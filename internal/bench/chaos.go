package bench

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sort"

	clusterpkg "github.com/haocl-project/haocl/internal/cluster"
	"github.com/haocl-project/haocl/internal/core"
	"github.com/haocl-project/haocl/internal/device"
	"github.com/haocl-project/haocl/internal/kernel"
	"github.com/haocl-project/haocl/internal/mem"
	"github.com/haocl-project/haocl/internal/node"
	"github.com/haocl-project/haocl/internal/sim"
	"github.com/haocl-project/haocl/internal/transport"
)

// This file measures the failure model (DESIGN.md §7): the same seeded
// workload runs twice per migration mode — once on a healthy cluster,
// once with the deterministic failure injector crashing and rejoining
// nodes mid-stream — and the chaos leg must end with byte-identical
// buffer contents. The comparison's speedup is the chaos leg's command
// rate over the healthy leg's: recovery is not free (each crash replays
// the mutation log onto the survivors), but the overhead must stay
// bounded, which CI gates through scripts/check_bench.py.

const chaosKernelSource = `
__kernel void chaos_incr(__global float* x, const int n) {
    int i = get_global_id(0);
    if (i < n) x[i] += 1.0f;
}
`

// chaosRegistry holds the one kernel the chaos workload launches.
func chaosRegistry() *kernel.Registry {
	reg := kernel.NewRegistry()
	reg.MustRegister(&kernel.Spec{
		Name: "chaos_incr", NumArgs: 2,
		Func: func(it *kernel.Item, args []kernel.Arg) {
			i := it.GlobalID(0)
			if i < args[1].Int() {
				args[0].Float32s()[i]++
			}
		},
	})
	return reg
}

// chaosBenchCluster is a crash-and-restart-capable in-process cluster:
// kill unbinds a node's address and drops every connection (a crashed
// process), restart boots a fresh process at the same address and rejoins
// it through the runtime.
type chaosBenchCluster struct {
	cfg     *clusterpkg.Config
	icd     *device.ICD
	net     *transport.MemNetwork
	rt      *core.Runtime
	servers map[string]*transport.Server
	alive   map[string]bool
}

func startChaosBenchCluster(nodes int) (*chaosBenchCluster, error) {
	cc := &chaosBenchCluster{
		cfg:     clusterpkg.Synthetic("chaos-bench", 0, nodes, 0, nil),
		icd:     device.NewICD(),
		net:     transport.NewMemNetwork(),
		servers: make(map[string]*transport.Server),
		alive:   make(map[string]bool),
	}
	sim.RegisterDrivers(cc.icd, chaosRegistry())
	for _, ns := range cc.cfg.Nodes {
		if err := cc.boot(ns.Name); err != nil {
			cc.close()
			return nil, err
		}
	}
	rt, err := core.Connect(core.Options{Config: cc.cfg, Dialer: cc.net, ClientName: "chaos-bench"})
	if err != nil {
		cc.close()
		return nil, err
	}
	attachTracerRuntime(rt)
	cc.rt = rt
	return cc, nil
}

func (cc *chaosBenchCluster) boot(name string) error {
	for _, ns := range cc.cfg.Nodes {
		if ns.Name != name {
			continue
		}
		devCfgs, err := ns.DeviceConfigs()
		if err != nil {
			return err
		}
		n, err := node.New(node.Options{Name: ns.Name, Devices: devCfgs, ICD: cc.icd, ExecWorkers: 1, Dialer: cc.net})
		if err != nil {
			return err
		}
		srv := n.Serve()
		if err := cc.net.Register(ns.Addr, srv); err != nil {
			srv.Close()
			return err
		}
		cc.servers[name] = srv
		cc.alive[name] = true
		return nil
	}
	return fmt.Errorf("chaos: unknown node %q", name)
}

func (cc *chaosBenchCluster) kill(name string) {
	if !cc.alive[name] {
		return
	}
	for _, ns := range cc.cfg.Nodes {
		if ns.Name == name {
			cc.net.Unregister(ns.Addr)
		}
	}
	cc.servers[name].Close()
	cc.alive[name] = false
}

func (cc *chaosBenchCluster) restart(name string) error {
	if cc.alive[name] {
		return nil
	}
	if err := cc.boot(name); err != nil {
		return err
	}
	return cc.rt.ReconnectNode(name)
}

func (cc *chaosBenchCluster) aliveCount() int {
	n := 0
	for _, a := range cc.alive {
		if a {
			n++
		}
	}
	return n
}

func (cc *chaosBenchCluster) close() {
	if cc.rt != nil {
		cc.rt.Close()
	}
	for name, srv := range cc.servers {
		if cc.alive[name] {
			srv.Close()
		}
	}
}

// chaosSizes picks the workload scale.
func chaosSizes(quick bool) (nodes, steps, killEvery int) {
	if quick {
		return 3, 80, 13
	}
	return 3, 240, 17
}

// chaosLeg runs the seeded workload once — writes, kernels, copies,
// broadcasts and checked reads over three buffers, mirrored host-side —
// and returns the measured row plus the final buffer bytes. With inj
// non-nil, every kill point restarts the previous casualty and crashes
// the nominated victim mid-stream.
func chaosLeg(mode core.MigrationMode, seed int64, nodes, steps int, inj *sim.FailureInjector) (PipelineRow, []byte, error) {
	legName := "no-failure"
	if inj != nil {
		legName = "chaos"
	}
	row := PipelineRow{Workload: coherenceModeName(mode), Transport: "mem", Mode: legName}

	cc, err := startChaosBenchCluster(nodes)
	if err != nil {
		return row, nil, err
	}
	defer cc.close()
	cc.rt.SetMigrationMode(mode)

	rng := rand.New(rand.NewSource(seed))
	devs := cc.rt.Devices(0)
	ctx, err := cc.rt.CreateContext(devs)
	if err != nil {
		return row, nil, err
	}
	prog, err := ctx.CreateProgram(chaosKernelSource)
	if err != nil {
		return row, nil, err
	}
	if err := prog.Build(); err != nil {
		return row, nil, err
	}
	k, err := prog.CreateKernel("chaos_incr")
	if err != nil {
		return row, nil, err
	}
	var queues []*core.Queue
	for _, d := range devs {
		q, err := ctx.CreateQueue(d)
		if err != nil {
			return row, nil, err
		}
		queues = append(queues, q)
	}

	const nBufs = 3
	const floats = 256
	var bufs []*core.Buffer
	mirror := make([][]float32, nBufs)
	for i := 0; i < nBufs; i++ {
		b, err := ctx.CreateBuffer(floats * 4)
		if err != nil {
			return row, nil, err
		}
		bufs = append(bufs, b)
		mirror[i] = make([]float32, floats)
	}

	randRange := func() (lo, hi int) {
		lo = rng.Intn(floats)
		hi = lo + 1 + rng.Intn(floats-lo)
		return lo, hi
	}

	base := cc.rt.Metrics()
	sw := startStopwatch()
	for step := 0; step < steps; step++ {
		if inj != nil {
			if victim := inj.Tick(); victim != "" {
				// Rejoin in name order: each restart replays logs and charges
				// virtual time, so map order would change the reported figures.
				names := make([]string, 0, len(cc.alive))
				for name := range cc.alive {
					names = append(names, name)
				}
				sort.Strings(names)
				for _, name := range names {
					if cc.alive[name] {
						continue
					}
					if err := cc.restart(name); err != nil {
						return row, nil, fmt.Errorf("chaos: step %d rejoin %q: %w", step, name, err)
					}
				}
				if cc.aliveCount() > 1 {
					cc.kill(victim)
				}
			}
		}
		bi := rng.Intn(nBufs)
		b, m := bufs[bi], mirror[bi]
		q := queues[rng.Intn(len(queues))]
		switch op := rng.Intn(100); {
		case op < 35: // ranged write
			lo, hi := randRange()
			vals := make([]float32, hi-lo)
			for i := range vals {
				vals[i] = float32(rng.Intn(1000))
			}
			if _, err := q.EnqueueWrite(b, int64(lo*4), mem.F32Bytes(vals)); err != nil {
				return row, nil, fmt.Errorf("chaos: step %d write: %w", step, err)
			}
			copy(m[lo:hi], vals)
		case op < 55: // kernel over the whole buffer
			if err := k.SetArg(0, b); err != nil {
				return row, nil, err
			}
			if err := k.SetArg(1, int32(floats)); err != nil {
				return row, nil, err
			}
			if _, err := q.EnqueueKernel(k, []int{floats}, nil, nil, nil); err != nil {
				return row, nil, fmt.Errorf("chaos: step %d kernel: %w", step, err)
			}
			for i := range m {
				m[i]++
			}
		case op < 70: // copy a range into another buffer
			oi := (bi + 1 + rng.Intn(nBufs-1)) % nBufs
			lo, hi := randRange()
			if _, err := q.EnqueueCopy(b, bufs[oi], int64(lo*4), int64(lo*4), int64((hi-lo)*4)); err != nil {
				return row, nil, fmt.Errorf("chaos: step %d copy: %w", step, err)
			}
			copy(mirror[oi][lo:hi], m[lo:hi])
		case op < 85: // checked ranged read
			lo, hi := randRange()
			data, _, err := q.EnqueueRead(b, int64(lo*4), int64((hi-lo)*4))
			if err != nil {
				return row, nil, fmt.Errorf("chaos: step %d read: %w", step, err)
			}
			for i, v := range mem.BytesF32(data) {
				if v != m[lo+i] {
					return row, nil, fmt.Errorf("chaos: step %d: buffer %d float %d = %v, mirror %v",
						step, bi, lo+i, v, m[lo+i])
				}
			}
		default: // broadcast fresh contents everywhere
			vals := make([]float32, floats)
			for i := range vals {
				vals[i] = float32(rng.Intn(1000))
			}
			if _, err := ctx.Broadcast(b, mem.F32Bytes(vals), queues); err != nil {
				return row, nil, fmt.Errorf("chaos: step %d broadcast: %w", step, err)
			}
			copy(m, vals)
		}
	}
	for _, q := range queues {
		if _, err := q.Finish(); err != nil {
			return row, nil, fmt.Errorf("chaos: finish: %w", err)
		}
	}
	wall := sw.elapsed()

	m := cc.rt.Metrics()
	row.Commands = m.Commands - base.Commands
	row.WallMS = float64(wall.Microseconds()) / 1000
	row.CmdsPerSec = float64(row.Commands) / wall.Seconds()
	row.VirtualSec = m.Makespan.Seconds()
	row.WireMB = float64(m.WireBytes-base.WireBytes) / (1 << 20)
	row.Recoveries = m.Recoveries
	row.ReplayedCommands = m.ReplayedCommands

	var final bytes.Buffer
	for i, b := range bufs {
		data, _, err := queues[0].EnqueueRead(b, 0, floats*4)
		if err != nil {
			return row, nil, fmt.Errorf("chaos: final read: %w", err)
		}
		for j, v := range mem.BytesF32(data) {
			if v != mirror[i][j] {
				return row, nil, fmt.Errorf("chaos: final: buffer %d float %d = %v, mirror %v", i, j, v, mirror[i][j])
			}
		}
		final.Write(data)
	}
	return row, final.Bytes(), nil
}

// ChaosReport runs the fault-tolerance experiment: per migration mode, a
// healthy leg and a failure-injected leg of the same seeded workload. The
// chaos leg must record recoveries, finish byte-identical to the healthy
// leg (VirtualMatch carries that acceptance bit), and keep its slowdown
// bounded (Speedup = chaos rate / healthy rate).
func ChaosReport(quick bool) (*Report, error) {
	nodes, steps, killEvery := chaosSizes(quick)
	const seed = 7
	rep := &Report{Experiment: "chaos", Quick: quick}

	for _, mode := range []core.MigrationMode{core.MigrateDelta, core.MigrateFull, core.MigrateHostRelay} {
		healthy, want, err := chaosLeg(mode, seed, nodes, steps, nil)
		if err != nil {
			return nil, err
		}
		var names []string
		for _, ns := range clusterpkg.Synthetic("chaos-bench", 0, nodes, 0, nil).Nodes {
			names = append(names, ns.Name)
		}
		inj := sim.NewFailureInjector(seed, names, killEvery)
		chaos, got, err := chaosLeg(mode, seed, nodes, steps, inj)
		if err != nil {
			return nil, err
		}
		if chaos.Recoveries == 0 {
			return nil, fmt.Errorf("chaos: %s leg recorded no recoveries — the injector never bit", healthy.Workload)
		}
		identical := bytes.Equal(got, want)
		if !identical {
			return nil, fmt.Errorf("chaos: %s results diverged from the no-failure leg", healthy.Workload)
		}
		rep.Rows = append(rep.Rows, healthy, chaos)
		rep.Comparisons = append(rep.Comparisons, Comparison{
			Workload:     healthy.Workload,
			Baseline:     "no-failure",
			Mode:         "chaos",
			Speedup:      chaos.CmdsPerSec / healthy.CmdsPerSec,
			VirtualMatch: identical,
			BytesRatio:   chaos.WireMB / healthy.WireMB,
		})
	}
	return rep, nil
}

// Chaos runs the fault-tolerance experiment and prints it.
func Chaos(w io.Writer, quick bool) error {
	nodes, steps, killEvery := chaosSizes(quick)
	fmt.Fprintln(w, "=== Fault tolerance: crash detection, re-placement, elastic rejoin ===")
	fmt.Fprintf(w, "(seeded workload over %d nodes, %d steps; the chaos leg crashes a node every %d steps\n",
		nodes, steps, killEvery)
	fmt.Fprintln(w, " and rejoins the previous casualty; results must be byte-identical to the healthy leg,")
	fmt.Fprintln(w, " speedup is the chaos leg's command rate over the healthy leg's — the recovery overhead)")
	rep, err := ChaosReport(quick)
	if err != nil {
		return err
	}
	printReport(w, rep)
	return nil
}
