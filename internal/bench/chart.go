package bench

import (
	"fmt"
	"io"
	"strings"
)

// chartWidth is the bar length of a full-scale value.
const chartWidth = 60

// RenderFig3Chart draws the stacked-bar version of the breakdown analysis,
// one bar per (matrix size, GPU count) group like the paper's Fig. 3:
// DataCreate (#), ComputeTime (=), DataTransfer (~).
func RenderFig3Chart(w io.Writer, rows []Fig3Row) {
	if len(rows) == 0 {
		return
	}
	var max float64
	for _, r := range rows {
		if t := r.DataCreate + r.Compute + r.Transfer; t > max {
			max = t
		}
	}
	if max <= 0 {
		return
	}
	fmt.Fprintf(w, "%41s  (# DataCreate, = ComputeTime, ~ DataTransfer; full bar = %.1fs)\n", "", max)
	for _, r := range rows {
		scale := func(v float64) int {
			n := int(v / max * chartWidth)
			if v > 0 && n == 0 {
				n = 1
			}
			return n
		}
		bar := strings.Repeat("#", scale(r.DataCreate)) +
			strings.Repeat("=", scale(r.Compute)) +
			strings.Repeat("~", scale(r.Transfer))
		fmt.Fprintf(w, "N=%-6d gpus=%d |%-*s| %7.2fs\n", r.MatrixSize, r.GPUs, chartWidth, bar, r.Total)
	}
}

// RenderSpeedupChart draws one benchmark's Fig. 2 series as horizontal
// bars of speedup over the local baseline.
func RenderSpeedupChart(w io.Writer, rows []Fig2Row) {
	var max float64
	for _, r := range rows {
		if r.Supported && r.Speedup > max {
			max = r.Speedup
		}
	}
	if max <= 0 {
		return
	}
	for _, r := range rows {
		if !r.Supported {
			fmt.Fprintf(w, "%-13s n=%-3d | (unsupported)\n", r.Series, r.Nodes)
			continue
		}
		n := int(r.Speedup / max * chartWidth)
		if n == 0 {
			n = 1
		}
		fmt.Fprintf(w, "%-13s n=%-3d |%-*s| %5.2fx\n",
			r.Series, r.Nodes, chartWidth, strings.Repeat("█", n), r.Speedup)
	}
}
