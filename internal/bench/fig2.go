package bench

import (
	"fmt"
	"io"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/apps"
	"github.com/haocl-project/haocl/internal/baseline"
	"github.com/haocl-project/haocl/internal/sim"
)

// Fig2Options selects the cluster scales to sweep.
type Fig2Options struct {
	GPUCounts    []int
	FPGACounts   []int
	HeteroMixes  [][2]int // {gpuNodes, fpgaNodes}
	SnuCLDCounts []int
}

// DefaultFig2Options reproduces the paper's scales: up to 16 GPU nodes and
// 4 FPGA nodes (§IV-A).
func DefaultFig2Options() Fig2Options {
	return Fig2Options{
		GPUCounts:    []int{1, 2, 4, 8, 16},
		FPGACounts:   []int{1, 2, 4},
		HeteroMixes:  [][2]int{{2, 1}, {4, 2}, {8, 4}, {16, 4}},
		SnuCLDCounts: []int{1, 2, 4, 8, 16},
	}
}

// Fig2Row is one measured series point.
type Fig2Row struct {
	App     string
	Series  string
	Nodes   int
	Seconds float64
	// Speedup is relative to the series' single-device local baseline
	// (Local-GPU for GPU/hetero/SnuCL-D series, Local-FPGA for FPGA).
	Speedup float64
	// Supported is false where the paper marks the configuration
	// impossible (CFD on SnuCL-D).
	Supported bool
}

func (r Fig2Row) String() string {
	if !r.Supported {
		return fmt.Sprintf("%-10s %-13s n=%-3d unsupported", r.App, r.Series, r.Nodes)
	}
	return fmt.Sprintf("%-10s %-13s n=%-3d time=%9.3fs speedup=%6.2fx",
		r.App, r.Series, r.Nodes, r.Seconds, r.Speedup)
}

// runOnCluster measures one HaoCL configuration of one benchmark.
func runOnCluster(c appCase, gpus, fpgas int, hetero bool) (apps.Result, error) {
	lc, err := cluster(gpus, fpgas)
	if err != nil {
		return apps.Result{}, err
	}
	defer lc.Close()
	if hetero && c.RunHetero != nil {
		return c.RunHetero(lc.Platform,
			lc.Platform.Devices(haocl.GPU), lc.Platform.Devices(haocl.FPGA))
	}
	return c.Run(lc.Platform, lc.Platform.Devices(haocl.AnyDevice))
}

// Fig2App produces every series for one benchmark.
func Fig2App(c appCase, opts Fig2Options) ([]Fig2Row, error) {
	localGPU := baseline.Local(c.Workload, sim.TeslaP4Params(1))
	localFPGA := baseline.Local(c.Workload, sim.VU9PParams(1, nil))

	rows := []Fig2Row{
		{App: c.Name, Series: "Local-GPU", Nodes: 1,
			Seconds: localGPU.Total.Seconds(), Speedup: 1, Supported: true},
		{App: c.Name, Series: "Local-FPGA", Nodes: 1,
			Seconds: localFPGA.Total.Seconds(), Speedup: 1, Supported: true},
	}

	for _, n := range opts.GPUCounts {
		res, err := runOnCluster(c, n, 0, false)
		if err != nil {
			return nil, fmt.Errorf("%s HaoCL-GPU n=%d: %w", c.Name, n, err)
		}
		rows = append(rows, Fig2Row{
			App: c.Name, Series: "HaoCL-GPU", Nodes: n,
			Seconds:   res.Makespan.Seconds(),
			Speedup:   localGPU.Total.Seconds() / res.Makespan.Seconds(),
			Supported: true,
		})
	}
	for _, n := range opts.FPGACounts {
		res, err := runOnCluster(c, 0, n, false)
		if err != nil {
			return nil, fmt.Errorf("%s HaoCL-FPGA n=%d: %w", c.Name, n, err)
		}
		rows = append(rows, Fig2Row{
			App: c.Name, Series: "HaoCL-FPGA", Nodes: n,
			Seconds:   res.Makespan.Seconds(),
			Speedup:   localFPGA.Total.Seconds() / res.Makespan.Seconds(),
			Supported: true,
		})
	}
	heteroBase := localGPU.Total.Seconds()
	if c.HeteroBaseFPGA {
		heteroBase = localFPGA.Total.Seconds()
	}
	for _, mix := range opts.HeteroMixes {
		res, err := runOnCluster(c, mix[0], mix[1], true)
		if err != nil {
			return nil, fmt.Errorf("%s HaoCL-Hetero %v: %w", c.Name, mix, err)
		}
		rows = append(rows, Fig2Row{
			App: c.Name, Series: "HaoCL-Hetero", Nodes: mix[0] + mix[1],
			Seconds:   res.Makespan.Seconds(),
			Speedup:   heteroBase / res.Makespan.Seconds(),
			Supported: true,
		})
	}
	for _, n := range opts.SnuCLDCounts {
		b := baseline.SnuCLD(c.Workload, sim.TeslaP4Params(1), n)
		row := Fig2Row{App: c.Name, Series: "SnuCL-D", Nodes: n, Supported: b.Supported}
		if b.Supported {
			row.Seconds = b.Total.Seconds()
			row.Speedup = localGPU.Total.Seconds() / b.Total.Seconds()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig2 runs every benchmark's end-to-end sweep and prints the series.
func Fig2(w io.Writer, opts Fig2Options) error {
	fmt.Fprintln(w, "=== Fig. 2: End-to-end speedup over a single GPU and FPGA ===")
	for _, c := range Cases() {
		fmt.Fprintf(w, "--- %s ---\n", c.Name)
		rows, err := Fig2App(c, opts)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Fprintln(w, r)
		}
		fmt.Fprintln(w)
		RenderSpeedupChart(w, rows)
	}
	return nil
}

// Hetero runs the paper's heterogeneity evaluation (§IV-C): MatrixMul with
// identical kernels over data portions and SpMV with pipeline stages split
// between GPUs and FPGAs, across growing hybrid clusters.
func Hetero(w io.Writer, mixes [][2]int) error {
	fmt.Fprintln(w, "=== Fig. 2 (heterogeneity): MatrixMul and SpMV on hybrid clusters ===")
	cases := Cases()
	for _, c := range []appCase{cases[0], cases[4]} { // MatrixMul, SpMV
		dev := sim.TeslaP4Params(1)
		devName := "Local-GPU"
		if c.HeteroBaseFPGA {
			dev = sim.VU9PParams(1, nil)
			devName = "Local-FPGA"
		}
		local := baseline.Local(c.Workload, dev)
		fmt.Fprintf(w, "--- %s (normalized to %s %.3fs) ---\n",
			c.Name, devName, local.Total.Seconds())
		for _, mix := range mixes {
			res, err := runOnCluster(c, mix[0], mix[1], true)
			if err != nil {
				return fmt.Errorf("hetero %s %v: %w", c.Name, mix, err)
			}
			fmt.Fprintf(w, "%-10s gpu=%-2d fpga=%-2d time=%9.3fs speedup=%6.2fx\n",
				c.Name, mix[0], mix[1], res.Makespan.Seconds(),
				local.Total.Seconds()/res.Makespan.Seconds())
		}
	}
	return nil
}
