package bench

import (
	"fmt"
	"io"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/apps/matmul"
	"github.com/haocl-project/haocl/internal/apps/spmv"
)

// AblationResult compares one design choice against its removal.
type AblationResult struct {
	Name     string
	With     float64 // seconds, design choice enabled
	Without  float64 // seconds, design choice ablated
	WithDesc string
	WoDesc   string
}

// Improvement reports the ablated-over-enabled slowdown factor.
func (r AblationResult) Improvement() float64 {
	if r.With == 0 {
		return 0
	}
	return r.Without / r.With
}

func (r AblationResult) String() string {
	return fmt.Sprintf("%-26s %s=%8.3fs  %s=%8.3fs  benefit=%5.2fx",
		r.Name, r.WithDesc, r.With, r.WoDesc, r.Without, r.Improvement())
}

// AblateBroadcastChain compares the pipelined node-to-node chain broadcast
// against naive star distribution (one host transfer per node) for a
// shared buffer reaching n nodes — the backbone design DESIGN.md credits
// for keeping broadcast-heavy benchmarks scalable.
func AblateBroadcastChain(nodes int) (AblationResult, error) {
	res := AblationResult{
		Name:     "broadcast: chain vs star",
		WithDesc: "chain", WoDesc: "star",
	}
	const funcBytes = 1 << 20
	const modelBytes = 240 << 20 // BFS's graph replica

	run := func(chain bool) (float64, error) {
		lc, err := cluster(nodes, 0)
		if err != nil {
			return 0, err
		}
		defer lc.Close()
		p := lc.Platform
		ctx, err := p.CreateContext(p.Devices(haocl.AnyDevice))
		if err != nil {
			return 0, err
		}
		queues := make([]*haocl.Queue, nodes)
		for i, d := range p.Devices(haocl.AnyDevice) {
			q, err := ctx.CreateQueue(d)
			if err != nil {
				return 0, err
			}
			queues[i] = q
		}
		buf, err := ctx.CreateBuffer(funcBytes)
		if err != nil {
			return 0, err
		}
		buf.SetModelSize(modelBytes)
		data := make([]byte, funcBytes)
		if chain {
			if _, err := ctx.Broadcast(buf, data, queues); err != nil {
				return 0, err
			}
		} else {
			// Star: each node gets its own host transfer of the full
			// payload. Distinct buffers prevent replica reuse.
			for _, q := range queues {
				b, err := ctx.CreateBuffer(funcBytes)
				if err != nil {
					return 0, err
				}
				b.SetModelSize(modelBytes)
				if _, err := q.EnqueueWrite(b, 0, data); err != nil {
					return 0, err
				}
			}
		}
		return float64(p.Metrics().Makespan) / 1e9, nil
	}

	var err error
	if res.With, err = run(true); err != nil {
		return res, err
	}
	if res.Without, err = run(false); err != nil {
		return res, err
	}
	return res, nil
}

// AblateWeightedPartition compares throughput-weighted data portions
// against equal portions for MatrixMul on a hybrid GPU+FPGA cluster — the
// §IV-C claim that heterogeneity-aware portioning keeps hybrid clusters
// from being bottlenecked by their slowest device.
func AblateWeightedPartition(gpus, fpgas int) (AblationResult, error) {
	res := AblationResult{
		Name:     "hetero split: weighted vs equal",
		WithDesc: "weighted", WoDesc: "equal",
	}
	run := func(equal bool) (float64, error) {
		lc, err := cluster(gpus, fpgas)
		if err != nil {
			return 0, err
		}
		defer lc.Close()
		r, err := matmul.Run(lc.Platform, matmul.Config{
			LogicalN:   matmul.DefaultLogicalN,
			FuncN:      48,
			Devices:    lc.Platform.Devices(haocl.AnyDevice),
			EqualSplit: equal,
		})
		if err != nil {
			return 0, err
		}
		return r.Makespan.Seconds(), nil
	}
	var err error
	if res.With, err = run(false); err != nil {
		return res, err
	}
	if res.Without, err = run(true); err != nil {
		return res, err
	}
	return res, nil
}

// AblateSpMVPartitionStage compares the nnz-balancing spmv_partition
// kernel against a naive equal row split on a heavy-tailed matrix — why
// the pipeline's first stage exists at all.
func AblateSpMVPartitionStage(devices int) (AblationResult, error) {
	res := AblationResult{
		Name:     "spmv: nnz-balanced vs naive",
		WithDesc: "balanced", WoDesc: "naive",
	}
	run := func(naive bool) (float64, error) {
		lc, err := cluster(devices, 0)
		if err != nil {
			return 0, err
		}
		defer lc.Close()
		gpus := lc.Platform.Devices(haocl.GPU)
		r, err := spmv.Run(lc.Platform, spmv.Config{
			LogicalRows:      spmv.DefaultLogicalRows,
			LogicalNNZPerRow: spmv.DefaultLogicalNNZPerRow,
			LogicalIters:     spmv.DefaultLogicalIters,
			FuncRows:         512,
			FuncNNZPerRow:    8,
			FuncIters:        2,
			Skewed:           true,
			NaiveSplit:       naive,
			PartitionDevices: gpus[:1],
			ComputeDevices:   gpus,
		})
		if err != nil {
			return 0, err
		}
		return r.Makespan.Seconds(), nil
	}
	var err error
	if res.With, err = run(false); err != nil {
		return res, err
	}
	if res.Without, err = run(true); err != nil {
		return res, err
	}
	return res, nil
}

// AblateSchedulerPolicies runs one mixed task graph under every built-in
// policy and reports the makespans, the scheduling component's reason for
// existing. Returned map: policy name → makespan seconds.
func AblateSchedulerPolicies() (map[string]float64, error) {
	const graphSource = `
__kernel void heavy(__global const float* in, __global float* out, const int n) {
    int i = get_global_id(0);
    if (i >= n) return;
    float acc = 0.0f;
    for (int k = 0; k < 256; k++) acc += in[i] * (float)k;
    out[i] = acc;
}
__kernel void light(__global const float* in, __global float* out, const int n) {
    int i = get_global_id(0);
    if (i < n) out[i] = in[i] + 1.0f;
}
`
	policies := []haocl.Policy{
		haocl.RoundRobinPolicy(),
		haocl.LeastLoadedPolicy(),
		haocl.HeteroAwarePolicy(),
		haocl.PowerAwarePolicy(0),
	}
	out := make(map[string]float64, len(policies))
	for _, pol := range policies {
		lc, err := haocl.StartLocalCluster(haocl.LocalClusterSpec{
			UserID:      "ablation",
			CPUNodes:    1,
			GPUNodes:    2,
			FPGANodes:   1,
			Bitstreams:  []string{"heavy", "light"},
			Kernels:     ablationRegistry(),
			ExecWorkers: 1,
		})
		if err != nil {
			return nil, err
		}
		p := lc.Platform
		attachTracer(p)
		ctx, err := p.CreateContext(p.Devices(haocl.AnyDevice))
		if err != nil {
			lc.Close()
			return nil, err
		}
		prog, err := ctx.CreateProgram(graphSource)
		if err != nil {
			lc.Close()
			return nil, err
		}
		if err := prog.Build(); err != nil {
			lc.Close()
			return nil, err
		}
		graph := ctx.NewTaskGraph()
		const n = 1 << 16
		for i := 0; i < 6; i++ {
			in, err := ctx.CreateBuffer(4 * n)
			if err != nil {
				lc.Close()
				return nil, err
			}
			mid, _ := ctx.CreateBuffer(4 * n)
			dst, _ := ctx.CreateBuffer(4 * n)
			kh, err := prog.CreateKernel("heavy")
			if err != nil {
				lc.Close()
				return nil, err
			}
			kh.SetArg(0, in)
			kh.SetArg(1, mid)
			kh.SetArg(2, int32(n))
			kl, _ := prog.CreateKernel("light")
			kl.SetArg(0, mid)
			kl.SetArg(1, dst)
			kl.SetArg(2, int32(n))
			opts := &haocl.LaunchOptions{CostFlops: 40e9, CostBytes: 4e9}
			t1 := graph.Add(fmt.Sprintf("heavy-%d", i), kh, []int{n}, nil, opts)
			graph.Add(fmt.Sprintf("light-%d", i), kl, []int{n}, nil,
				&haocl.LaunchOptions{CostFlops: 1e8, CostBytes: 5e8}, t1)
		}
		if err := graph.Run(pol); err != nil {
			lc.Close()
			return nil, err
		}
		out[pol.Name()] = graph.Makespan().Seconds()
		lc.Close()
	}
	return out, nil
}

func ablationRegistry() *haocl.KernelRegistry {
	reg := haocl.NewKernelRegistry()
	reg.MustRegister(&haocl.KernelSpec{
		Name: "heavy", NumArgs: 3,
		Func: func(it *haocl.WorkItem, args []haocl.KernelArg) {
			i := it.GlobalID(0)
			if i >= args[2].Int() {
				return
			}
			in, out := args[0].Float32s(), args[1].Float32s()
			var acc float32
			for k := 0; k < 256; k++ {
				acc += in[i] * float32(k)
			}
			out[i] = acc
		},
	})
	reg.MustRegister(&haocl.KernelSpec{
		Name: "light", NumArgs: 3,
		Func: func(it *haocl.WorkItem, args []haocl.KernelArg) {
			i := it.GlobalID(0)
			if i < args[2].Int() {
				args[1].Float32s()[i] = args[0].Float32s()[i] + 1
			}
		},
	})
	return reg
}

// Ablations prints every design-choice comparison.
func Ablations(w io.Writer) error {
	fmt.Fprintln(w, "=== Ablations: design choices vs their removal ===")
	bc, err := AblateBroadcastChain(8)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, bc)
	wp, err := AblateWeightedPartition(2, 2)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, wp)
	sp, err := AblateSpMVPartitionStage(4)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, sp)

	makespans, err := AblateSchedulerPolicies()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "scheduler policies on a mixed heavy/light task graph:")
	for _, name := range []string{"round-robin", "least-loaded", "hetero-aware", "power-aware"} {
		fmt.Fprintf(w, "  %-14s makespan=%8.3fs\n", name, makespans[name])
	}
	return nil
}
