package bench

import (
	"strings"
	"testing"
)

// TestBatchedBeatsSyncMatmul is the acceptance gate for the wire-frame
// batching layer: on the MatrixMul tile stream over loopback TCP, the
// batched mode must beat the synchronous baseline while virtual time stays
// identical across all three modes (batching changes syscalls, never the
// modeled hardware). The batched-vs-pipelined margin is asserted loosely
// (not < the pipelined rate) because CI machines are noisy; the committed
// BENCH_batch.json baseline records the real gap.
func TestBatchedBeatsSyncMatmul(t *testing.T) {
	const gpus, launches = 2, 150
	rows := map[StreamMode]PipelineRow{}
	for _, mode := range []StreamMode{ModeSync, ModePipelined, ModeBatched} {
		row, err := PipelineMatmul(gpus, launches, mode, true)
		if err != nil {
			t.Fatal(err)
		}
		rows[mode] = row
		t.Logf("%v", row)
	}
	if rows[ModeBatched].CmdsPerSec <= rows[ModeSync].CmdsPerSec {
		t.Fatalf("batched rate %.0f cmds/s does not beat sync %.0f cmds/s",
			rows[ModeBatched].CmdsPerSec, rows[ModeSync].CmdsPerSec)
	}
	if rows[ModeBatched].VirtualSec != rows[ModeSync].VirtualSec ||
		rows[ModePipelined].VirtualSec != rows[ModeSync].VirtualSec {
		t.Fatalf("virtual makespans diverged: sync=%v pipelined=%v batched=%v",
			rows[ModeSync].VirtualSec, rows[ModePipelined].VirtualSec, rows[ModeBatched].VirtualSec)
	}
}

// TestBatchReportShape checks the machine-readable report carries every
// (workload, mode) cell and the comparisons the JSON baseline relies on.
func TestBatchReportShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full report in short mode")
	}
	rep, err := BatchReport(true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Experiment != "batch" {
		t.Fatalf("experiment = %q", rep.Experiment)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d, want 2 workloads x 3 modes", len(rep.Rows))
	}
	if len(rep.Comparisons) != 6 {
		t.Fatalf("comparisons = %d, want 3 per workload", len(rep.Comparisons))
	}
	for _, c := range rep.Comparisons {
		if !c.VirtualMatch {
			t.Fatalf("virtual time diverged in %s/%s", c.Workload, c.Mode)
		}
		if c.Speedup <= 0 {
			t.Fatalf("speedup %v in %s/%s", c.Speedup, c.Workload, c.Mode)
		}
	}
}

// TestBatchReportPrints smoke-tests the printed experiment.
func TestBatchReportPrints(t *testing.T) {
	if testing.Short() {
		t.Skip("full report in short mode")
	}
	var sb strings.Builder
	if err := Batch(&sb, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"MatrixMul", "BFS", "batched", "pipelined", "sync"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
