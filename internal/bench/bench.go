// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§IV) on simulated clusters, printing
// the same rows and series the paper reports.
//
//	Table I — benchmark applications and input sizes
//	Fig. 2  — end-to-end speedup over a single GPU and FPGA, per benchmark,
//	          for Local, HaoCL-GPU, HaoCL-FPGA, HaoCL-Hetero and SnuCL-D
//	Fig. 3  — MatrixMul breakdown (DataCreate / ComputeTime / DataTransfer)
//	          across matrix sizes and GPU counts
//	§IV-B   — single-node overhead of HaoCL versus native OpenCL
//
// HaoCL numbers come from real runs of the benchmark host programs through
// the public API on in-process clusters (virtual-time clocks, functional
// execution on reduced inputs, costs modeled at paper scale); Local and
// SnuCL-D numbers come from the analytic baselines in internal/baseline,
// which share the same device and network models.
//
// Identical runs must print identical rows, so the harness is a
// deterministic package; the only wall-clock reads live in walltime.go.
//
// haoclvet:deterministic
package bench

import (
	"fmt"
	"io"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/apps"
	"github.com/haocl-project/haocl/internal/apps/bfs"
	"github.com/haocl-project/haocl/internal/apps/cfd"
	"github.com/haocl-project/haocl/internal/apps/knn"
	"github.com/haocl-project/haocl/internal/apps/matmul"
	"github.com/haocl-project/haocl/internal/apps/spmv"
	"github.com/haocl-project/haocl/internal/baseline"
)

// Registry builds a kernel registry with every benchmark installed.
func Registry() *haocl.KernelRegistry {
	reg := haocl.NewKernelRegistry()
	matmul.RegisterKernels(reg)
	spmv.RegisterKernels(reg)
	knn.RegisterKernels(reg)
	bfs.RegisterKernels(reg)
	cfd.RegisterKernels(reg)
	return reg
}

// cluster starts an in-process cluster with the given node mix.
func cluster(gpus, fpgas int) (*haocl.LocalCluster, error) {
	return clusterAtWire(gpus, fpgas, 0)
}

// clusterAtWire is cluster with the nodes' wire version capped
// (0 = current), for pre-batching baselines.
func clusterAtWire(gpus, fpgas int, wire uint32) (*haocl.LocalCluster, error) {
	lc, err := haocl.StartLocalCluster(haocl.LocalClusterSpec{
		UserID:      "bench",
		GPUNodes:    gpus,
		FPGANodes:   fpgas,
		Bitstreams:  apps.Bitstreams(),
		Kernels:     Registry(),
		ExecWorkers: 1,
		WireVersion: wire,
	})
	if err != nil {
		return nil, err
	}
	attachTracer(lc.Platform)
	return lc, nil
}

// appCase wires one Table I benchmark into the harness.
type appCase struct {
	Name string
	// Run executes the benchmark with devices partitioning the work.
	Run func(p *haocl.Platform, devices []*haocl.Device) (apps.Result, error)
	// RunHetero executes the heterogeneous configuration (may differ
	// from Run for pipelined workloads like SpMV).
	RunHetero func(p *haocl.Platform, gpus, fpgas []*haocl.Device) (apps.Result, error)
	// Workload is the paper-scale descriptor for the analytic baselines.
	Workload baseline.Workload
	// HeteroBaseFPGA normalizes the hetero series to the single-FPGA
	// local baseline (SpMV's compute stage runs on FPGAs, §IV-C).
	HeteroBaseFPGA bool
	// InputBytes is the Table I input size.
	InputBytes int64
	// Description is the Table I description row.
	Description string
}

// Cases lists the five Table I benchmarks at paper scale.
func Cases() []appCase {
	return []appCase{
		{
			Name:        "MatrixMul",
			Description: "Matrix multiplication",
			InputBytes:  matmul.InputBytes(matmul.DefaultLogicalN),
			Workload:    matmul.Workload(matmul.DefaultLogicalN),
			Run: func(p *haocl.Platform, devices []*haocl.Device) (apps.Result, error) {
				return matmul.Run(p, matmul.Config{
					LogicalN: matmul.DefaultLogicalN,
					FuncN:    48,
					Devices:  devices,
				})
			},
		},
		{
			Name:        "CFD",
			Description: "Unstructured grid finite volume solver",
			InputBytes:  cfd.InputBytes(cfd.DefaultLogicalElems),
			Workload:    cfd.Workload(cfd.DefaultLogicalElems, cfd.DefaultLogicalIters),
			Run: func(p *haocl.Platform, devices []*haocl.Device) (apps.Result, error) {
				return cfd.Run(p, cfd.Config{
					LogicalElems: cfd.DefaultLogicalElems,
					FuncElems:    16 * len(devices),
					LogicalIters: cfd.DefaultLogicalIters,
					FuncIters:    2,
					Devices:      devices,
				})
			},
		},
		{
			Name:        "kNN",
			Description: "Finds k-nearest neighbors in unstructured data set",
			InputBytes: knn.InputBytes(knn.DefaultLogicalPoints,
				knn.DefaultLogicalQueries, knn.DefaultDims),
			Workload: knn.Workload(knn.DefaultLogicalPoints, knn.DefaultLogicalQueries,
				knn.DefaultDims, knn.DefaultK),
			Run: func(p *haocl.Platform, devices []*haocl.Device) (apps.Result, error) {
				return knn.Run(p, knn.Config{
					LogicalPoints:  knn.DefaultLogicalPoints,
					LogicalQueries: knn.DefaultLogicalQueries,
					FuncPoints:     400,
					FuncQueries:    4,
					Dims:           knn.DefaultDims,
					K:              knn.DefaultK,
					Devices:        devices,
				})
			},
		},
		{
			Name:        "BFS",
			Description: "Traverses all the connected components in a graph",
			InputBytes:  bfs.InputBytes(bfs.DefaultLogicalSide),
			Workload:    bfs.Workload(bfs.DefaultLogicalSide, bfs.DefaultSources),
			Run: func(p *haocl.Platform, devices []*haocl.Device) (apps.Result, error) {
				return bfs.Run(p, bfs.Config{
					LogicalSide: bfs.DefaultLogicalSide,
					FuncSide:    6,
					Sources:     bfs.DefaultSources,
					Devices:     devices,
				})
			},
		},
		{
			Name:        "SpMV",
			Description: "Sparse matrix-vector multiplication in CSR format",
			InputBytes: spmv.InputBytes(spmv.DefaultLogicalRows,
				spmv.DefaultLogicalNNZPerRow),
			Workload: spmv.Workload(spmv.DefaultLogicalRows,
				spmv.DefaultLogicalNNZPerRow, spmv.DefaultLogicalIters),
			Run: func(p *haocl.Platform, devices []*haocl.Device) (apps.Result, error) {
				return spmv.Run(p, spmv.Config{
					LogicalRows:      spmv.DefaultLogicalRows,
					LogicalNNZPerRow: spmv.DefaultLogicalNNZPerRow,
					FuncRows:         256,
					FuncNNZPerRow:    8,
					LogicalIters:     spmv.DefaultLogicalIters,
					FuncIters:        2,
					PartitionDevices: devices[:1],
					ComputeDevices:   devices,
				})
			},
			HeteroBaseFPGA: true,
			RunHetero: func(p *haocl.Platform, gpus, fpgas []*haocl.Device) (apps.Result, error) {
				// The paper's pipeline split: partition on GPUs,
				// computation on FPGAs (§IV-C).
				return spmv.Run(p, spmv.Config{
					LogicalRows:      spmv.DefaultLogicalRows,
					LogicalNNZPerRow: spmv.DefaultLogicalNNZPerRow,
					FuncRows:         256,
					FuncNNZPerRow:    8,
					LogicalIters:     spmv.DefaultLogicalIters,
					FuncIters:        2,
					PartitionDevices: gpus,
					ComputeDevices:   fpgas,
				})
			},
		},
	}
}

// Table1 prints the benchmark applications table.
func Table1(w io.Writer) error {
	fmt.Fprintln(w, "=== Table I: Benchmark applications ===")
	fmt.Fprintf(w, "%-10s %-52s %s\n", "App.", "Description", "In. size")
	for _, c := range Cases() {
		fmt.Fprintf(w, "%-10s %-52s %s\n", c.Name, c.Description, fmtBytes(c.InputBytes))
	}
	return nil
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.0fMB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
