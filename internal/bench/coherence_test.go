package bench

import (
	"testing"

	"github.com/haocl-project/haocl/internal/core"
)

// TestCoherenceDeltaMovesFewerBytes is the acceptance gate for the
// range-coherence layer: on the partial-update workload, delta migration
// must move strictly fewer modeled wire bytes than full-buffer migration
// while producing identical functional results (the workloads verify every
// read against a host-side mirror internally).
func TestCoherenceDeltaMovesFewerBytes(t *testing.T) {
	size, chunk, iters, _ := coherenceSizes(true)
	full, err := CoherencePartialUpdate(size, chunk, iters, core.MigrateFull)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := CoherencePartialUpdate(size, chunk, iters, core.MigrateHostRelay)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("full:  %v", full)
	t.Logf("delta: %v", delta)
	if delta.WireMB >= full.WireMB {
		t.Fatalf("delta moved %.2f MB, full %.2f MB — delta must move fewer bytes", delta.WireMB, full.WireMB)
	}
	if delta.VirtualSec > full.VirtualSec {
		t.Fatalf("delta virtual makespan %.4fs exceeds full %.4fs", delta.VirtualSec, full.VirtualSec)
	}
}

// TestCoherenceFullyStaleIsInvariant: when every migration is a whole
// buffer anyway, the two modes must be indistinguishable — bit-identical
// virtual makespans and identical modeled byte counts. This is the
// assertion CI's bench-smoke job repeats from the JSON report.
func TestCoherenceFullyStaleIsInvariant(t *testing.T) {
	size, _, _, iters := coherenceSizes(true)
	full, err := CoherenceFullyStale(size, iters, core.MigrateFull)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := CoherenceFullyStale(size, iters, core.MigrateHostRelay)
	if err != nil {
		t.Fatal(err)
	}
	if delta.VirtualSec != full.VirtualSec {
		t.Fatalf("virtual makespan diverged: delta=%v full=%v", delta.VirtualSec, full.VirtualSec)
	}
	if delta.WireMB != full.WireMB {
		t.Fatalf("wire bytes diverged: delta=%v full=%v MB", delta.WireMB, full.WireMB)
	}
}
