package bench

import (
	"strings"
	"testing"
)

// TestPipelineBeatsSyncMatmul is the acceptance gate for the async
// command-pipelining refactor: on the MatrixMul tile stream, issuing
// without per-command round trips must push more commands per second than
// the synchronous baseline, while virtual time stays identical (the
// pipeline changes host behavior, not the modeled hardware).
func TestPipelineBeatsSyncMatmul(t *testing.T) {
	// Loopback TCP is the deployment shape: socket buffering lets the
	// pipeline stream while the blocking baseline pays each round trip.
	const gpus, launches = 2, 150
	syncRow, err := PipelineMatmul(gpus, launches, ModeSync, true)
	if err != nil {
		t.Fatal(err)
	}
	pipeRow, err := PipelineMatmul(gpus, launches, ModePipelined, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sync: %v", syncRow)
	t.Logf("pipelined: %v", pipeRow)
	if pipeRow.CmdsPerSec <= syncRow.CmdsPerSec {
		t.Fatalf("pipelined rate %.0f cmds/s does not beat sync %.0f cmds/s",
			pipeRow.CmdsPerSec, syncRow.CmdsPerSec)
	}
	if syncRow.VirtualSec <= 0 || pipeRow.VirtualSec <= 0 {
		t.Fatalf("virtual makespan missing: sync=%v pipelined=%v",
			syncRow.VirtualSec, pipeRow.VirtualSec)
	}
}

// TestPipelineBFSChain checks the dependency-chain workload runs in both
// modes and reports sane numbers (the chain is fully serialized in virtual
// time, so only the wall-clock rate may differ).
func TestPipelineBFSChain(t *testing.T) {
	for _, mode := range []StreamMode{ModeSync, ModePipelined, ModeBatched} {
		row, err := PipelineBFS(60, mode, false)
		if err != nil {
			t.Fatal(err)
		}
		if row.Commands != 61 || row.CmdsPerSec <= 0 {
			t.Fatalf("row = %v", row)
		}
	}
}

// TestPipelineReportPrints smoke-tests the printed experiment.
func TestPipelineReportPrints(t *testing.T) {
	if testing.Short() {
		t.Skip("full report in short mode")
	}
	var sb strings.Builder
	if err := Pipeline(&sb, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"MatrixMul", "BFS", "pipelined", "sync"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
