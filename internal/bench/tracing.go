package bench

import (
	"sync/atomic"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/core"
)

// The harness starts a fresh cluster per experiment leg, so a single
// platform-level SetTracer call cannot observe a whole experiment. Instead
// the harness keeps one package-wide tracer sink: SetTracer installs it,
// and every platform constructor attaches it to the new platform, making
// each leg one trace.Run (its own Perfetto process group — all legs start
// at virtual time 0, so they must not share a timeline).

// benchTracer is the harness-wide tracer, nil when tracing is off.
var benchTracer atomic.Pointer[haocl.Tracer]

// SetTracer installs (or with nil removes) the tracer every subsequently
// started platform records into. haocl-bench -trace wires this up.
func SetTracer(t *haocl.Tracer) { benchTracer.Store(t) }

// attachTracer hooks the harness tracer, if any, onto a freshly started
// platform and returns the platform's run handle (nil when tracing is off).
func attachTracer(p *haocl.Platform) *haocl.TraceRun {
	t := benchTracer.Load()
	if t == nil {
		return nil
	}
	return p.SetTracer(t)
}

// attachTracerRuntime is attachTracer for harness code that connects at the
// runtime layer (the chaos experiment).
func attachTracerRuntime(rt *core.Runtime) *haocl.TraceRun {
	t := benchTracer.Load()
	if t == nil {
		return nil
	}
	return rt.SetTracer(t)
}
