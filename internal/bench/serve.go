package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/apps/matmul"
	"github.com/haocl-project/haocl/internal/mem"
	"github.com/haocl-project/haocl/internal/sched"
	"github.com/haocl-project/haocl/internal/vtime"
)

// This file is the multi-tenant serve experiment: an open-loop load
// generator replaying seeded Poisson arrivals of small jobs from several
// tenant sessions onto one shared device, with admission either FIFO (the
// arrival order, what a single shared queue does naturally) or fair-share
// (the weighted DRR queue of internal/sched). The number that moves is the
// light tenants' p99 *virtual* latency under a 10x aggressor: FIFO lets
// the aggressor's backlog push it unboundedly past the tenant's solo run,
// while fair-share holds it within a small constant factor (DESIGN.md §8).
//
// Everything is deterministic for a fixed seed: arrivals come from a
// seeded PRNG, service times from the virtual-time device model, and the
// dispatcher is a single-threaded discrete-event loop — so the fair leg
// rerun reproduces every job latency bit for bit.

// serveJob is one generated request.
type serveJob struct {
	tenant  string
	arrival vtime.Time
	kind    int // index into serveJobTypes
	opts    *haocl.LaunchOptions
	latency vtime.Duration // filled by the dispatch loop
}

// serveTenant is one load-generating session.
type serveTenant struct {
	name  string
	rate  float64 // mean arrivals per virtual second
	jobs  int
	kinds []int // job-type indices cycled across the trace
}

// serveJobTypes are the request shapes, cycled per tenant: a compute-heavy
// matmul tile, a byte-heavy BFS frontier and a balanced SpMV iteration.
// Only the modeled costs differ — the functional launch is the same tiny
// tile — so the service-time mix is heterogeneous the way a real serving
// workload is.
var serveJobTypes = []haocl.LaunchOptions{
	{CostFlops: 2 * 256 * 256 * 256, CostBytes: 3 * 4 * 256 * 256}, // matmul 256³
	{CostFlops: 2 << 20, CostBytes: 48 << 20},                      // bfs frontier
	{CostFlops: 16 << 20, CostBytes: 16 << 20},                     // spmv iteration
}

// genArrivals draws a tenant's Poisson arrival times (exponential
// interarrivals at the tenant's rate) and assigns job types round-robin.
// The PRNG is seeded per tenant, so every leg regenerates the identical
// trace.
func genArrivals(t serveTenant, seed int64) []*serveJob {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]*serveJob, 0, t.jobs)
	var at float64 // virtual seconds
	for i := 0; i < t.jobs; i++ {
		at += rng.ExpFloat64() / t.rate
		kind := t.kinds[i%len(t.kinds)]
		jobs = append(jobs, &serveJob{
			tenant:  t.name,
			arrival: vtime.Time(at * 1e9),
			kind:    kind,
			opts:    &serveJobTypes[kind],
		})
	}
	return jobs
}

// mergeByArrival interleaves per-tenant traces into one arrival-ordered
// stream, breaking exact ties by tenant name so the order is total.
func mergeByArrival(traces ...[]*serveJob) []*serveJob {
	var all []*serveJob
	for _, t := range traces {
		all = append(all, t...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].arrival != all[j].arrival {
			return all[i].arrival < all[j].arrival
		}
		return all[i].tenant < all[j].tenant
	})
	return all
}

// tenantLane is one session's objects on the shared device.
type tenantLane struct {
	sess *haocl.Session
	q    *haocl.Queue
	k    *haocl.Kernel
}

// openLanes opens one session per tenant on the shared device and builds
// each a queue, a program and a bound kernel. The per-job launch is the
// same n=8 functional tile the pipeline experiment uses; modeled costs
// come from the job.
func openLanes(p *haocl.Platform, dev *haocl.Device, tenants []string) (map[string]*tenantLane, error) {
	const n = 8
	tile := make([]float32, n*n)
	for i := range tile {
		tile[i] = float32(i%5) * 0.5
	}
	tileBytes := mem.F32Bytes(tile)
	lanes := make(map[string]*tenantLane, len(tenants))
	for _, name := range tenants {
		sess := p.OpenSession(name)
		ctx, err := sess.CreateContext([]*haocl.Device{dev})
		if err != nil {
			return nil, err
		}
		prog, err := ctx.CreateProgram(matmul.Source)
		if err != nil {
			return nil, err
		}
		if err := prog.Build(); err != nil {
			return nil, err
		}
		q, err := ctx.CreateQueue(dev)
		if err != nil {
			return nil, err
		}
		a, err := ctx.CreateBuffer(int64(len(tileBytes)))
		if err != nil {
			return nil, err
		}
		b, err := ctx.CreateBuffer(int64(len(tileBytes)))
		if err != nil {
			return nil, err
		}
		c, err := ctx.CreateBuffer(int64(len(tileBytes)))
		if err != nil {
			return nil, err
		}
		k, err := prog.CreateKernel("matmul")
		if err != nil {
			return nil, err
		}
		for idx, v := range []any{a, b, c, int32(n), int32(n), int32(n)} {
			if err := k.SetArg(idx, v); err != nil {
				return nil, err
			}
		}
		// Stage the inputs before the open-loop stream starts so per-job
		// service is pure kernel time.
		if _, err := q.EnqueueWrite(a, 0, tileBytes); err != nil {
			return nil, err
		}
		if _, err := q.EnqueueWrite(b, 0, tileBytes); err != nil {
			return nil, err
		}
		if _, err := q.Finish(); err != nil {
			return nil, err
		}
		lanes[name] = &tenantLane{sess: sess, q: q, k: k}
	}
	return lanes, nil
}

func closeLanes(lanes map[string]*tenantLane) {
	for _, l := range lanes {
		l.sess.Close()
	}
}

// dispatch launches one job no earlier than floor on its tenant's lane and
// returns the completion instant. The floor event serializes the shared
// device: each job starts after the previous dispatched job finished,
// whichever session issued it.
func dispatch(lanes map[string]*tenantLane, job *serveJob, floor vtime.Time) (vtime.Time, error) {
	const n = 8
	l := lanes[job.tenant]
	ev, err := l.q.EnqueueKernel(l.k, []int{n, n}, []int{n, n},
		[]*haocl.Event{haocl.FloorEvent(floor)}, job.opts)
	if err != nil {
		return 0, err
	}
	return ev.End(), nil
}

// runFIFO serves jobs in pure arrival order — the shared-queue baseline.
func runFIFO(lanes map[string]*tenantLane, jobs []*serveJob) (vtime.Time, error) {
	var now vtime.Time
	for _, job := range jobs {
		floor := job.arrival
		if now > floor {
			floor = now
		}
		end, err := dispatch(lanes, job, floor)
		if err != nil {
			return 0, err
		}
		job.latency = vtime.Duration(end - job.arrival)
		now = end
	}
	return now, nil
}

// runFair serves jobs through the weighted DRR admission queue: arrivals
// up to the current virtual instant are admitted, then the next grant in
// fair order occupies the device. The aggressor's backlog waits inside the
// admission queue instead of ahead of everyone on the device. Each item's
// deficit cost is its job type's calibrated virtual service time, so the
// shares are fair in device time, not job counts.
func runFair(p *haocl.Platform, lanes map[string]*tenantLane, jobs []*serveJob, svcByType []vtime.Duration, quantum vtime.Duration, weights map[string]int64) (vtime.Time, error) {
	fq := sched.NewFairQueue(quantum)
	for tenant, w := range weights {
		fq.SetWeight(tenant, w)
	}
	// When the leg is traced, each grant records an admission span from the
	// job's arrival to its grant instant (nil run = tracing off, no-op).
	fq.SetTracer(p.Runtime().TraceRun())
	var now vtime.Time
	next := 0
	for {
		for next < len(jobs) && jobs[next].arrival <= now {
			fq.Submit(sched.FairItem{
				Tenant:  jobs[next].tenant,
				Cost:    svcByType[jobs[next].kind],
				Arrival: jobs[next].arrival,
				Payload: jobs[next],
			})
			next++
		}
		item, ok := fq.NextAt(now)
		if !ok {
			if next >= len(jobs) {
				return now, nil
			}
			// Device idle: jump to the next arrival.
			now = jobs[next].arrival
			continue
		}
		job := item.Payload.(*serveJob)
		end, err := dispatch(lanes, job, now)
		if err != nil {
			return 0, err
		}
		job.latency = vtime.Duration(end - job.arrival)
		now = end
		fq.Done(job.tenant)
	}
}

// calibrate measures each job type's virtual service time on a scratch
// cluster, so arrival rates can be expressed as device utilizations and
// admission costs in device time.
func calibrate() (svcByType []vtime.Duration, mean vtime.Duration, err error) {
	lc, err := cluster(1, 0)
	if err != nil {
		return nil, 0, err
	}
	defer lc.Close()
	p := lc.Platform
	dev := p.Devices(haocl.GPU)[0]
	lanes, err := openLanes(p, dev, []string{"calibrate"})
	if err != nil {
		return nil, 0, err
	}
	defer closeLanes(lanes)
	// Warmup launch: the fresh queue's clock still trails the staged
	// input writes, so the first measured interval would otherwise absorb
	// that tail and overstate the service time.
	warm := &serveJob{tenant: "calibrate", kind: 0, opts: &serveJobTypes[0]}
	now, err := dispatch(lanes, warm, 0)
	if err != nil {
		return nil, 0, err
	}
	var total vtime.Duration
	for i := range serveJobTypes {
		job := &serveJob{tenant: "calibrate", kind: i, opts: &serveJobTypes[i]}
		end, err := dispatch(lanes, job, now)
		if err != nil {
			return nil, 0, err
		}
		svcByType = append(svcByType, vtime.Duration(end-now))
		total += vtime.Duration(end - now)
		now = end
	}
	return svcByType, total / vtime.Duration(len(serveJobTypes)), nil
}

// percentileMS returns the p-th percentile of the latencies in virtual
// milliseconds (nearest-rank).
func percentileMS(lats []vtime.Duration, p float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := make([]vtime.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(float64(len(sorted))*p+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return float64(sorted[rank]) / 1e6
}

// latenciesByTenant buckets measured job latencies per tenant.
func latenciesByTenant(jobs []*serveJob) map[string][]vtime.Duration {
	out := make(map[string][]vtime.Duration)
	for _, j := range jobs {
		out[j.tenant] = append(out[j.tenant], j.latency)
	}
	return out
}

// serveRow summarizes one (leg, tenant) cell.
func serveRow(mode, tenant string, lats []vtime.Duration, wall time.Duration) PipelineRow {
	return PipelineRow{
		Workload:     "Serve",
		Transport:    "mem",
		Mode:         mode,
		Tenant:       tenant,
		Jobs:         int64(len(lats)),
		WallMS:       float64(wall.Microseconds()) / 1000,
		P50VirtualMS: percentileMS(lats, 0.50),
		P99VirtualMS: percentileMS(lats, 0.99),
	}
}

// serveSizes returns per-light-tenant job counts for the experiment.
func serveSizes(quick bool) int {
	if quick {
		return 100
	}
	return 400
}

// ServeReport runs the full serve experiment. Tenants light-0 and light-1
// submit at 10% device utilization each; tenant aggressor submits the same
// job mix at 10x their rate (100% utilization), overloading the device.
// Legs:
//
//	solo — each light tenant alone on the cluster (its baseline p99);
//	fifo — all three tenants admitted in arrival order;
//	fair — all three through the weighted DRR queue, then rerun with the
//	       same seed to prove grant-order and latency determinism.
func ServeReport(quick bool, seed int64) (*Report, error) {
	return serveReport("serve", serveSizes(quick), quick, seed)
}

// ServeTraceReport is the compact serve variant behind the serve-trace
// experiment: the same legs and admission modes at a handful of jobs per
// light tenant, sized so its exported trace stays a small committed
// artifact while still showing per-tenant lane timelines, admission waits
// and the fair-rerun determinism in Perfetto.
func ServeTraceReport(seed int64) (*Report, error) {
	return serveReport("serve-trace", 8, true, seed)
}

// serveReport runs the serve legs at the given per-light-tenant job count.
func serveReport(experiment string, jobsPerLight int, quick bool, seed int64) (*Report, error) {
	rep := &Report{Experiment: experiment, Quick: quick}

	svcByType, meanSvc, err := calibrate()
	if err != nil {
		return nil, err
	}
	// Light tenants run the full mix at 10% device utilization each; the
	// aggressor streams uniform matmul-type jobs at 100% utilization —
	// 10x the lights' combined demand, overloading the device — over the
	// same arrival horizon as the lights.
	allKinds := []int{0, 1, 2}
	lightRate := 0.10 * 1e9 / float64(meanSvc)
	aggRate := 1e9 / float64(svcByType[0])
	horizon := float64(jobsPerLight) / lightRate // virtual seconds
	tenants := []serveTenant{
		{name: "light-0", rate: lightRate, jobs: jobsPerLight, kinds: allKinds},
		{name: "light-1", rate: lightRate, jobs: jobsPerLight, kinds: allKinds},
		{name: "aggressor", rate: aggRate, jobs: int(aggRate * horizon), kinds: []int{0}},
	}
	// DRR quantum at the cheapest job's service time: a grant's leftover
	// deficit then never covers another job, so the aggressor cannot burst
	// twice between two light-tenant grants. The latency-sensitive lights
	// get enough weight that a single visit's top-up covers their largest
	// job — otherwise a heavy light job sits accumulating deficit across
	// rounds while the aggressor takes a grant in every one of them.
	quantum, maxSvc := svcByType[0], svcByType[0]
	for _, s := range svcByType {
		if s < quantum {
			quantum = s
		}
		if s > maxSvc {
			maxSvc = s
		}
	}
	wLight := int64(maxSvc/quantum) + 1
	weights := map[string]int64{"light-0": wLight, "light-1": wLight, "aggressor": 1}
	names := make([]string, len(tenants))
	for i, t := range tenants {
		names[i] = t.name
	}

	type legResult struct {
		byTenant map[string][]vtime.Duration
		makespan vtime.Time
		arrival0 vtime.Time
		jobs     int
		wall     time.Duration
	}
	// Every leg gets a fresh cluster: the virtual clocks (NIC, queues,
	// devices) are global and monotonic within one platform, so reusing it
	// would bleed one leg's virtual time into the next and break the
	// rerun-determinism check.
	runLeg := func(fair bool, active []serveTenant) (*legResult, error) {
		lc, err := cluster(1, 0)
		if err != nil {
			return nil, err
		}
		defer lc.Close()
		p := lc.Platform
		dev := p.Devices(haocl.GPU)[0]
		legTraces := make([][]*serveJob, len(active))
		legNames := make([]string, len(active))
		for i, t := range active {
			legTraces[i] = genArrivals(t, seed+int64(len(t.name)))
			legNames[i] = t.name
		}
		merged := mergeByArrival(legTraces...)
		lanes, err := openLanes(p, dev, legNames)
		if err != nil {
			return nil, err
		}
		defer closeLanes(lanes)
		sw := startStopwatch()
		var end vtime.Time
		if fair {
			end, err = runFair(p, lanes, merged, svcByType, quantum, weights)
		} else {
			end, err = runFIFO(lanes, merged)
		}
		if err != nil {
			return nil, err
		}
		return &legResult{
			byTenant: latenciesByTenant(merged),
			makespan: end,
			arrival0: merged[0].arrival,
			jobs:     len(merged),
			wall:     sw.elapsed(),
		}, nil
	}

	// Solo baselines: each light tenant alone on its own cluster, FIFO
	// over its own arrivals.
	soloP99 := make(map[string]float64)
	for _, t := range tenants[:2] {
		res, err := runLeg(false, []serveTenant{t})
		if err != nil {
			return nil, err
		}
		row := serveRow("solo", t.name, res.byTenant[t.name], res.wall)
		soloP99[t.name] = row.P99VirtualMS
		rep.Rows = append(rep.Rows, row)
	}

	legs := []struct {
		mode string
		fair bool
	}{{"fifo", false}, {"fair", true}, {"fair-rerun", true}}
	results := make(map[string]*legResult)
	for _, leg := range legs {
		res, err := runLeg(leg.fair, tenants)
		if err != nil {
			return nil, err
		}
		results[leg.mode] = res
		for _, name := range names {
			rep.Rows = append(rep.Rows, serveRow(leg.mode, name, res.byTenant[name], res.wall))
		}
		// Aggregate row carries the leg's saturation throughput.
		var all []vtime.Duration
		for _, name := range names {
			all = append(all, res.byTenant[name]...)
		}
		agg := serveRow(leg.mode, "all", all, res.wall)
		agg.JobsPerVirtSec = float64(res.jobs) / vtime.Duration(res.makespan-res.arrival0).Seconds()
		agg.VirtualSec = res.makespan.Seconds()
		rep.Rows = append(rep.Rows, agg)
	}

	// Light-tenant p99 vs solo, per admission mode: Speedup holds the
	// ratio (>1 = worse than solo). Fair-share must bound it; FIFO must
	// show the aggressor blowing it up.
	for _, mode := range []string{"fifo", "fair"} {
		for _, t := range tenants[:2] {
			p99 := percentileMS(results[mode].byTenant[t.name], 0.99)
			rep.Comparisons = append(rep.Comparisons, Comparison{
				Workload: t.name,
				Baseline: "solo",
				Mode:     mode,
				Speedup:  p99 / soloP99[t.name],
			})
		}
	}
	// Determinism: the fair rerun must reproduce every latency exactly.
	match := true
	for _, name := range names {
		a, b := results["fair"].byTenant[name], results["fair-rerun"].byTenant[name]
		if len(a) != len(b) {
			match = false
			break
		}
		for i := range a {
			if a[i] != b[i] {
				match = false
				break
			}
		}
	}
	rep.Comparisons = append(rep.Comparisons, Comparison{
		Workload:     "Serve",
		Baseline:     "fair",
		Mode:         "fair-rerun",
		Speedup:      1,
		VirtualMatch: match,
	})
	return rep, nil
}

// Serve runs the multi-tenant serve experiment and prints the rows.
func Serve(w io.Writer, quick bool) error {
	jobs := serveSizes(quick)
	fmt.Fprintln(w, "=== Multi-tenant serving: fair-share vs FIFO admission under a 10x aggressor ===")
	fmt.Fprintf(w, "(2 light tenants at 10%% utilization x %d jobs each + 1 aggressor at 100%% utilization,\n", jobs)
	fmt.Fprintln(w, " seeded Poisson arrivals on one shared GPU; latencies are virtual time from arrival)")
	rep, err := ServeReport(quick, 1)
	if err != nil {
		return err
	}
	printServeReport(w, rep)
	return nil
}

// ServeTrace runs the trace-sized serve variant and prints its rows.
func ServeTrace(w io.Writer) error {
	fmt.Fprintln(w, "=== Serve (trace-sized): fair-share vs FIFO at 8 jobs per light tenant ===")
	rep, err := ServeTraceReport(1)
	if err != nil {
		return err
	}
	printServeReport(w, rep)
	return nil
}

func printServeReport(w io.Writer, rep *Report) {
	for _, r := range rep.Rows {
		fmt.Fprintln(w, r)
	}
	for _, c := range rep.Comparisons {
		if c.Mode == "fair-rerun" {
			verdict := "every latency reproduced exactly"
			if !c.VirtualMatch {
				verdict = "LATENCIES DIVERGED ACROSS RERUNS"
			}
			fmt.Fprintf(w, "%s: %s vs %s — %s\n", c.Workload, c.Mode, c.Baseline, verdict)
			continue
		}
		fmt.Fprintf(w, "%s: %s p99 latency %.2fx solo\n", c.Workload, c.Mode, c.Speedup)
	}
}
