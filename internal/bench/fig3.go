package bench

import (
	"fmt"
	"io"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/apps/matmul"
	"github.com/haocl-project/haocl/internal/baseline"
	"github.com/haocl-project/haocl/internal/sim"
)

// Fig3Sizes are the matrix dimensions on the paper's x-axis.
var Fig3Sizes = []int{1000, 2000, 4000, 5000, 6000, 8000, 10000}

// Fig3GPUCounts are the per-size GPU-node groups of the paper's bars.
var Fig3GPUCounts = []int{2, 4, 9}

// Fig3Row is one stacked bar of the breakdown chart.
type Fig3Row struct {
	MatrixSize int
	GPUs       int
	DataCreate float64 // seconds
	Compute    float64
	Transfer   float64
	Total      float64
}

func (r Fig3Row) String() string {
	return fmt.Sprintf("N=%-6d gpus=%-2d DataCreate=%8.3fs ComputeTime=%9.3fs DataTransfer=%8.3fs total=%9.3fs",
		r.MatrixSize, r.GPUs, r.DataCreate, r.Compute, r.Transfer, r.Total)
}

// Fig3Cell measures one (size, gpus) configuration.
func Fig3Cell(size, gpus int) (Fig3Row, error) {
	lc, err := cluster(gpus, 0)
	if err != nil {
		return Fig3Row{}, err
	}
	defer lc.Close()
	res, err := matmul.Run(lc.Platform, matmul.Config{
		LogicalN: size,
		FuncN:    48,
		Devices:  lc.Platform.Devices(haocl.GPU),
	})
	if err != nil {
		return Fig3Row{}, err
	}
	return Fig3Row{
		MatrixSize: size,
		GPUs:       gpus,
		DataCreate: res.DataCreate.Seconds(),
		Compute:    res.Compute.Seconds(),
		Transfer:   res.Transfer.Seconds(),
		Total:      res.Makespan.Seconds(),
	}, nil
}

// Fig3 reproduces the system breakdown analysis with Matrix
// Multiplication: data creation, compute and transfer components across
// matrix sizes 1000..10000 and 2/4/9 GPU nodes. System initialization is
// negligible and omitted, as in the paper.
func Fig3(w io.Writer) error {
	fmt.Fprintln(w, "=== Fig. 3: System breakdown analysis with Matrix Multiplication ===")
	var rows []Fig3Row
	for _, size := range Fig3Sizes {
		for _, gpus := range Fig3GPUCounts {
			row, err := Fig3Cell(size, gpus)
			if err != nil {
				return fmt.Errorf("fig3 N=%d gpus=%d: %w", size, gpus, err)
			}
			fmt.Fprintln(w, row)
			rows = append(rows, row)
		}
	}
	fmt.Fprintln(w)
	RenderFig3Chart(w, rows)
	return nil
}

// Overhead reproduces the §IV-B claim that HaoCL imposes a negligible
// overhead versus a native single-node OpenCL environment: each benchmark
// on one HaoCL GPU node versus the Local analytic baseline.
func Overhead(w io.Writer) error {
	fmt.Fprintln(w, "=== Single-node overhead: HaoCL (1 GPU node) vs native OpenCL ===")
	for _, c := range Cases() {
		local := baseline.Local(c.Workload, sim.TeslaP4Params(1))
		res, err := runOnCluster(c, 1, 0, false)
		if err != nil {
			return fmt.Errorf("overhead %s: %w", c.Name, err)
		}
		ratio := res.Makespan.Seconds() / local.Total.Seconds()
		fmt.Fprintf(w, "%-10s local=%9.3fs haocl=%9.3fs overhead=%+6.1f%%\n",
			c.Name, local.Total.Seconds(), res.Makespan.Seconds(), (ratio-1)*100)
	}
	return nil
}
