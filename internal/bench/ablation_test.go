package bench

import (
	"io"
	"testing"
)

// TestAblationBroadcastChain: the pipelined chain must beat star
// distribution by a wide margin at 8 nodes (one full send + 7 pipeline
// fills versus 8 serialized full sends).
func TestAblationBroadcastChain(t *testing.T) {
	res, err := AblateBroadcastChain(8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Improvement() < 3 {
		t.Fatalf("chain benefit only %.2fx at 8 nodes: %s", res.Improvement(), res)
	}
}

// TestAblationWeightedPartition: on a hybrid GPU+FPGA cluster, equal
// portions bottleneck on the FPGAs; weighted portions finish sooner.
func TestAblationWeightedPartition(t *testing.T) {
	res, err := AblateWeightedPartition(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.With >= res.Without {
		t.Fatalf("weighted split not faster: %s", res)
	}
}

// TestAblationSpMVPartitionStage: on a heavy-tailed matrix the
// nnz-balancing stage beats a naive row split.
func TestAblationSpMVPartitionStage(t *testing.T) {
	res, err := AblateSpMVPartitionStage(4)
	if err != nil {
		t.Fatal(err)
	}
	if res.With >= res.Without {
		t.Fatalf("balanced partition not faster on skewed matrix: %s", res)
	}
}

// TestAblationSchedulerPolicies: load-aware policies must beat blind
// round-robin on the mixed task graph, and every policy must finish it.
func TestAblationSchedulerPolicies(t *testing.T) {
	makespans, err := AblateSchedulerPolicies()
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range makespans {
		if s <= 0 {
			t.Fatalf("policy %s produced empty makespan", name)
		}
	}
	if makespans["least-loaded"] >= makespans["round-robin"] {
		t.Fatalf("least-loaded (%.3fs) not better than round-robin (%.3fs)",
			makespans["least-loaded"], makespans["round-robin"])
	}
	if makespans["hetero-aware"] >= makespans["round-robin"] {
		t.Fatalf("hetero-aware (%.3fs) not better than round-robin (%.3fs)",
			makespans["hetero-aware"], makespans["round-robin"])
	}
}

func TestAblationsPrintAll(t *testing.T) {
	if err := Ablations(io.Discard); err != nil {
		t.Fatal(err)
	}
}
