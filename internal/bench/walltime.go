package bench

import "time"

// stopwatch measures host wall-clock time for the harness's own telemetry:
// how long a run took on the machine executing it. Every figure and table
// the harness reports is computed from virtual time; wall time never feeds
// a result. Concentrating the clock reads here keeps the rest of the
// package clean under haoclvet's determinism check, and makes any new
// wall-clock dependency show up as a diff in this file.
type stopwatch struct{ start time.Time }

// startStopwatch begins timing.
func startStopwatch() stopwatch {
	//lint:ignore haoclvet/vtimedet wall time is operator telemetry, never simulation input
	return stopwatch{start: time.Now()}
}

// elapsed reports the wall time since the stopwatch started.
func (s stopwatch) elapsed() time.Duration {
	//lint:ignore haoclvet/vtimedet wall time is operator telemetry, never simulation input
	return time.Since(s.start)
}
