// Package haocl is a heterogeneity-aware, OpenCL-like programming framework
// for clusters of CPUs, GPUs and FPGAs, reproducing the system described in
// "HaoCL: Harnessing Large-scale Heterogeneous Processors Made Easy"
// (ICDCS 2020).
//
// A HaoCL application is an ordinary OpenCL host program: it discovers
// devices, creates a context, queues, buffers and kernels, and enqueues
// NDRange launches. The difference is that the devices may live on any
// node of a cluster — the wrapper library packages each API call into a
// message, ships it over the asynchronous communication backbone to the
// Node Management Process that owns the device, and transparently migrates
// buffers between nodes. An extensible scheduling component places
// task-graph kernels onto devices using built-in or user-supplied policies.
//
// The OpenCL object model maps directly:
//
//	clGetDeviceIDs            → Platform.Devices
//	clCreateContext           → Platform.CreateContext
//	clCreateCommandQueue      → Context.CreateQueue
//	clCreateBuffer            → Context.CreateBuffer
//	clCreateProgramWithSource → Context.CreateProgram
//	clBuildProgram            → Program.Build
//	clCreateKernel            → Program.CreateKernel
//	clSetKernelArg            → Kernel.SetArg
//	clEnqueueWriteBuffer      → Queue.EnqueueWrite
//	clEnqueueNDRangeKernel    → Queue.EnqueueKernel
//	clEnqueueReadBuffer       → Queue.EnqueueRead
//	clFinish                  → Queue.Finish
//	clWaitForEvents           → Event.Wait
//	clGetEventProfilingInfo   → Event.Profile
//
// Enqueue operations are pipelined, matching the paper's asynchronous
// communication backbone (§III-C): they return once the command is on the
// wire, per-queue ordering is preserved end to end, and Event.Wait,
// Event.Profile and Queue.Finish are the synchronization points where
// completions — and any command failure, which is sticky per queue —
// surface. See DESIGN.md §2 for the pipeline invariants.
//
// One connected Platform can serve many tenants at once. Each tenant opens
// a Session — an isolated object namespace with its own metrics, sticky
// errors, migration mode and scheduling policy over the shared cluster
// substrate (DESIGN.md §8):
//
//	Platform.OpenSession      → per-tenant session
//	Session.CreateContext     → contexts owned by this session
//	Session.Metrics           → this tenant's virtual-time accounting
//	Session.Flush             → drain this tenant's in-flight work
//	Session.SetPolicy         → this tenant's scheduling policy
//	Session.SetMigrationMode  → this tenant's buffer-migration strategy
//	Session.Close             → tear the session down
//
// Objects never cross sessions: enqueueing a buffer, kernel or wait event
// owned by another session fails with core.ErrCrossSession. The
// Platform-level CreateContext/Metrics/Flush helpers route through an
// implicit default session, so single-tenant programs are unchanged.
//
// Kernel bodies are Go work-item functions registered against the kernel
// names appearing in OpenCL C program source (see RegisterKernel); devices
// are simulated with calibrated performance models, and all reported times
// are virtual (see DESIGN.md).
package haocl

import (
	"fmt"
	"io"

	"github.com/haocl-project/haocl/internal/cluster"
	"github.com/haocl-project/haocl/internal/core"
	"github.com/haocl-project/haocl/internal/profile"
	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/trace"
	"github.com/haocl-project/haocl/internal/transport"
	"github.com/haocl-project/haocl/internal/vtime"
)

// Core object types, exposed as aliases so the full method sets defined in
// the runtime are part of the public API.
type (
	// Device is one compute device somewhere in the cluster.
	Device = core.DeviceRef
	// Context is a cluster-wide OpenCL context.
	Context = core.Context
	// Queue is an in-order command queue on one device.
	Queue = core.Queue
	// Buffer is a cluster-wide memory object with automatic migration.
	Buffer = core.Buffer
	// Program is OpenCL C program source plus its per-node builds.
	Program = core.Program
	// Kernel is one kernel instantiated from a built program.
	Kernel = core.Kernel
	// Event is a completed command with virtual-time profiling info.
	Event = core.Event
	// TaskGraph is a schedulable DAG of kernel launches.
	TaskGraph = core.TaskGraph
	// GraphTask is one node of a TaskGraph.
	GraphTask = core.GraphTask
	// LaunchOptions tunes one kernel launch.
	LaunchOptions = core.LaunchOptions
	// LocalSpace requests per-work-group local memory in Kernel.SetArg.
	LocalSpace = core.LocalSpace
	// Session is one tenant's isolated view of the shared cluster.
	Session = core.Session
	// MigrationMode selects a session's buffer-migration strategy.
	MigrationMode = core.MigrationMode
	// Metrics is the virtual-time accounting of a run.
	Metrics = core.Metrics
	// Tracer collects deterministic virtual-time span trees (DESIGN.md §10).
	Tracer = trace.Tracer
	// TraceRun is one tracer attachment — a Perfetto process group.
	TraceRun = trace.Run
	// Span is one recorded trace interval.
	Span = trace.Span
	// DeviceKey names a device cluster-wide.
	DeviceKey = profile.DeviceKey
	// Time is an instant of virtual time.
	Time = vtime.Time
	// Duration is a span of virtual time.
	Duration = vtime.Duration
)

// DeviceType selects a hardware class.
type DeviceType = protocol.DeviceType

// Device types.
const (
	CPU  = protocol.DeviceCPU
	GPU  = protocol.DeviceGPU
	FPGA = protocol.DeviceFPGA
)

// AnyDevice matches every device type in Platform.Devices.
const AnyDevice DeviceType = 0

// Migration modes for Session.SetMigrationMode.
const (
	// MigrateDelta moves only stale byte ranges, node to node.
	MigrateDelta = core.MigrateDelta
	// MigrateFull widens every migration to the whole buffer.
	MigrateFull = core.MigrateFull
	// MigrateHostRelay bounces ranges through the host.
	MigrateHostRelay = core.MigrateHostRelay
)

// Platform is the application's entry point: one connected HaoCL cluster
// presenting all remote devices as a single OpenCL platform.
type Platform struct {
	rt *core.Runtime
}

// options collects Connect configuration.
type options struct {
	policy     Policy
	clientName string
	dialer     transport.Dialer
}

// Option configures Connect.
type Option func(*options)

// WithPolicy sets the default scheduling policy for task graphs.
func WithPolicy(p Policy) Option {
	return func(o *options) { o.policy = p }
}

// WithClientName labels this host program in node logs.
func WithClientName(name string) Option {
	return func(o *options) { o.clientName = name }
}

// withDialer overrides the transport (used by StartLocalCluster).
func withDialer(d transport.Dialer) Option {
	return func(o *options) { o.dialer = d }
}

// Connect dials every node in the cluster configuration over TCP and
// returns the unified platform.
func Connect(cfg *ClusterConfig, opts ...Option) (*Platform, error) {
	o := options{dialer: transport.TCPDialer{}, clientName: "haocl-app"}
	for _, opt := range opts {
		opt(&o)
	}
	internalCfg, err := cfg.internal()
	if err != nil {
		return nil, err
	}
	rt, err := core.Connect(core.Options{
		Config:     internalCfg,
		Dialer:     o.dialer,
		Policy:     o.policy,
		ClientName: o.clientName,
	})
	if err != nil {
		return nil, err
	}
	return &Platform{rt: rt}, nil
}

// Devices lists cluster devices of the given type (AnyDevice for all),
// the clGetDeviceIDs of the unified platform.
func (p *Platform) Devices(t DeviceType) []*Device { return p.rt.Devices(t) }

// CreateContext builds a context over devices anywhere in the cluster,
// owned by the platform's implicit default session.
func (p *Platform) CreateContext(devices []*Device) (*Context, error) {
	return p.rt.CreateContext(devices)
}

// FloorEvent returns a synthetic, already-complete event at virtual
// instant t. Passing it in a wait list keeps a command from starting
// before t — open-loop load generators use it to model job arrival times.
func FloorEvent(t Time) *Event { return core.FloorEvent(t) }

// OpenSession opens an isolated tenant session on the shared cluster.
// Sessions are cheap: they share node connections, device handles and the
// virtual-time network model, but keep their own object namespace, metrics,
// sticky errors, migration mode and scheduling policy (DESIGN.md §8).
func (p *Platform) OpenSession(tenant string) *Session {
	return p.rt.OpenSession(tenant)
}

// Metrics returns the run's virtual-time accounting so far.
func (p *Platform) Metrics() Metrics { return p.rt.Metrics() }

// NewTracer returns an empty tracer ready to attach with SetTracer.
func NewTracer() *Tracer { return trace.New() }

// SetTracer attaches a tracer to the platform: every command any session
// issues records its deterministic span tree until the tracer is swapped
// out (SetTracer(nil) detaches). One attachment is one TraceRun — a
// separate Perfetto process group in the export. Tracing is zero-cost on
// the enqueue path while detached.
func (p *Platform) SetTracer(t *Tracer) *TraceRun { return p.rt.SetTracer(t) }

// WriteTrace exports everything the attached tracer recorded as Chrome
// trace-event JSON, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
func (p *Platform) WriteTrace(w io.Writer) error { return p.rt.WriteTrace(w) }

// WriteMetrics writes a Prometheus-text snapshot of the platform's
// counters, per-device monitor gauges and — when a tracer is attached —
// per-span-kind latency histograms.
func (p *Platform) WriteMetrics(w io.Writer) error { return p.rt.WriteMetrics(w) }

// ModelDataCreate charges host-side materialization of n bytes of input
// data in the virtual-time model and returns the instant it completes.
// Call it after generating benchmark inputs (Fig. 3 "DataCreate").
func (p *Platform) ModelDataCreate(n int64) Time { return p.rt.ModelDataCreate(n) }

// PollStatus refreshes the resource monitor from every node.
func (p *Platform) PollStatus() error { return p.rt.PollStatus() }

// TotalEnergy reports cluster energy consumed so far, in joules.
func (p *Platform) TotalEnergy() (float64, error) { return p.rt.TotalEnergy() }

// SetPolicy swaps the default scheduling policy.
func (p *Platform) SetPolicy(pol Policy) { p.rt.SetPolicy(pol) }

// Runtime exposes the underlying runtime for advanced integrations (the
// experiment harness uses it; applications normally do not need it).
func (p *Platform) Runtime() *core.Runtime { return p.rt }

// Close disconnects from every node.
func (p *Platform) Close() error { return p.rt.Close() }

// DeviceSpec describes one device in a cluster configuration.
type DeviceSpec struct {
	// Type is "cpu", "gpu" or "fpga".
	Type string
	// Model selects a hardware preset; empty picks the type default.
	Model string
	// Shared permits concurrent users.
	Shared bool
	// Bitstreams lists pre-built kernels available on an FPGA.
	Bitstreams []string
}

// NodeSpec describes one device node.
type NodeSpec struct {
	Name    string
	Addr    string
	Devices []DeviceSpec
}

// ClusterConfig describes a HaoCL cluster: the system configuration file
// of paper §III-C.
type ClusterConfig struct {
	UserID string
	Nodes  []NodeSpec
}

// LoadClusterConfig reads a JSON cluster configuration file.
func LoadClusterConfig(path string) (*ClusterConfig, error) {
	c, err := cluster.Load(path)
	if err != nil {
		return nil, err
	}
	return fromInternalConfig(c), nil
}

func fromInternalConfig(c *cluster.Config) *ClusterConfig {
	out := &ClusterConfig{UserID: c.UserID}
	for _, n := range c.Nodes {
		ns := NodeSpec{Name: n.Name, Addr: n.Addr}
		for _, d := range n.Devices {
			ns.Devices = append(ns.Devices, DeviceSpec{
				Type:       d.Type,
				Model:      d.Model,
				Shared:     d.Shared,
				Bitstreams: d.Bitstreams,
			})
		}
		out.Nodes = append(out.Nodes, ns)
	}
	return out
}

func (c *ClusterConfig) internal() (*cluster.Config, error) {
	if c == nil {
		return nil, fmt.Errorf("haocl: nil cluster config")
	}
	out := &cluster.Config{UserID: c.UserID}
	for _, n := range c.Nodes {
		ns := cluster.NodeSpec{Name: n.Name, Addr: n.Addr}
		for _, d := range n.Devices {
			ns.Devices = append(ns.Devices, cluster.DeviceSpec{
				Type:       d.Type,
				Model:      d.Model,
				Shared:     d.Shared,
				Bitstreams: d.Bitstreams,
			})
		}
		out.Nodes = append(out.Nodes, ns)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// ShutdownCluster asks every Node Management Process to drain and exit,
// then disconnects — the orderly teardown for dedicated clusters started
// with cmd/haocl-node.
func (p *Platform) ShutdownCluster() error { return p.rt.ShutdownCluster() }
