module github.com/haocl-project/haocl

go 1.22
