package haocl

import (
	"fmt"

	"github.com/haocl-project/haocl/internal/cluster"
	"github.com/haocl-project/haocl/internal/device"
	"github.com/haocl-project/haocl/internal/node"
	"github.com/haocl-project/haocl/internal/sim"
	"github.com/haocl-project/haocl/internal/transport"
)

// LocalClusterSpec describes an in-process simulated cluster. Either give
// node counts (the paper's homogeneous-node layout: one device per node)
// or a full Config for arbitrary topologies.
type LocalClusterSpec struct {
	// UserID identifies the host user to the NMPs.
	UserID string

	// CPUNodes, GPUNodes and FPGANodes spin up that many single-device
	// nodes. Ignored when Config is set.
	CPUNodes  int
	GPUNodes  int
	FPGANodes int
	// Bitstreams lists the pre-built kernels for FPGA devices.
	Bitstreams []string

	// Config, when set, describes the topology explicitly.
	Config *ClusterConfig

	// Kernels is the kernel implementation registry shared by every
	// node. Required.
	Kernels *KernelRegistry

	// ExecWorkers caps functional execution parallelism per node (many
	// simulated nodes share one OS process; 1 keeps them fair).
	ExecWorkers int

	// WireVersion caps the wire protocol version the nodes negotiate
	// (0 = current). Benchmarks pin it to emulate pre-batching peers.
	WireVersion uint32

	// SingleLane folds every node's dispatch onto one lane per session,
	// the serialized pre-lane execution (DESIGN.md §4). Benchmarks use it
	// as the baseline against per-queue lanes.
	SingleLane bool

	// Policy is the default scheduling policy.
	Policy Policy
}

// LocalCluster is a running in-process cluster: real Node Management
// Processes served over an in-memory backbone, plus a connected Platform.
type LocalCluster struct {
	// Platform is the connected host-side platform.
	Platform *Platform

	servers []*transport.Server
	nodes   []*node.Node
}

// StartLocalCluster builds the nodes, serves them on an in-memory network,
// and connects a Platform — everything a distributed deployment has except
// the TCP sockets (integration tests cover those via cmd/haocl-node).
func StartLocalCluster(spec LocalClusterSpec) (*LocalCluster, error) {
	if spec.Kernels == nil {
		return nil, fmt.Errorf("haocl: LocalClusterSpec.Kernels is required")
	}
	var internalCfg *cluster.Config
	if spec.Config != nil {
		var err error
		internalCfg, err = spec.Config.internal()
		if err != nil {
			return nil, err
		}
		internalCfg.UserID = firstNonEmpty(spec.Config.UserID, spec.UserID)
	} else {
		internalCfg = cluster.Synthetic(spec.UserID, spec.CPUNodes, spec.GPUNodes, spec.FPGANodes, spec.Bitstreams)
	}

	icd := device.NewICD()
	sim.RegisterDrivers(icd, spec.Kernels)
	net := transport.NewMemNetwork()

	lc := &LocalCluster{}
	for _, ns := range internalCfg.Nodes {
		devCfgs, err := ns.DeviceConfigs()
		if err != nil {
			lc.Close()
			return nil, err
		}
		n, err := node.New(node.Options{
			Name:        ns.Name,
			Devices:     devCfgs,
			ICD:         icd,
			ExecWorkers: spec.ExecWorkers,
			WireVersion: spec.WireVersion,
			SingleLane:  spec.SingleLane,
			Dialer:      net,
		})
		if err != nil {
			lc.Close()
			return nil, err
		}
		srv := n.Serve()
		if err := net.Register(ns.Addr, srv); err != nil {
			srv.Close()
			lc.Close()
			return nil, err
		}
		lc.nodes = append(lc.nodes, n)
		lc.servers = append(lc.servers, srv)
	}

	platform, err := Connect(fromInternalConfig(internalCfg),
		withDialer(net),
		WithPolicy(spec.Policy),
		WithClientName("haocl-local"),
	)
	if err != nil {
		lc.Close()
		return nil, err
	}
	lc.Platform = platform
	return lc, nil
}

// Close disconnects the platform and stops every node server.
func (c *LocalCluster) Close() error {
	var firstErr error
	if c.Platform != nil {
		if err := c.Platform.Close(); err != nil {
			firstErr = err
		}
	}
	for _, s := range c.servers {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}
