// Benchmarks regenerating the paper's tables and figures through the
// testing.B harness. Each benchmark wraps one experiment from
// internal/bench; `go test -bench=. -benchmem` reproduces the whole
// evaluation section. Reported wall times measure the reproduction
// harness itself; the experiment's virtual-time results are printed by
// cmd/haocl-bench.
package haocl_test

import (
	"io"
	"testing"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/apps"
	"github.com/haocl-project/haocl/internal/apps/matmul"
	"github.com/haocl-project/haocl/internal/bench"
)

// BenchmarkTable1Workloads regenerates Table I.
func BenchmarkTable1Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Table1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFig2Series measures one benchmark's Fig. 2 sweep.
func benchFig2Series(b *testing.B, caseIdx int) {
	b.Helper()
	opts := bench.Fig2Options{
		GPUCounts:    []int{1, 4, 16},
		FPGACounts:   []int{1, 4},
		HeteroMixes:  [][2]int{{4, 2}},
		SnuCLDCounts: []int{16},
	}
	c := bench.Cases()[caseIdx]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig2App(c, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2EndToEnd* regenerate the per-benchmark series of Fig. 2.
func BenchmarkFig2EndToEndMatrixMul(b *testing.B) { benchFig2Series(b, 0) }
func BenchmarkFig2EndToEndCFD(b *testing.B)       { benchFig2Series(b, 1) }
func BenchmarkFig2EndToEndKNN(b *testing.B)       { benchFig2Series(b, 2) }
func BenchmarkFig2EndToEndBFS(b *testing.B)       { benchFig2Series(b, 3) }
func BenchmarkFig2EndToEndSpMV(b *testing.B)      { benchFig2Series(b, 4) }

// BenchmarkFig2Hetero regenerates the §IV-C heterogeneity evaluation
// (MatrixMul data-partitioned and SpMV stage-pipelined on hybrid
// GPU+FPGA clusters).
func BenchmarkFig2Hetero(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Hetero(io.Discard, [][2]int{{2, 1}, {4, 2}, {8, 4}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Breakdown regenerates the §IV-D breakdown analysis.
func BenchmarkFig3Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, size := range []int{1000, 4000, 10000} {
			for _, gpus := range []int{2, 4, 9} {
				if _, err := bench.Fig3Cell(size, gpus); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkOverheadSingleNode regenerates the §IV-B overhead comparison.
func BenchmarkOverheadSingleNode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Overhead(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHostProgramMatMul measures one full OpenCL host-program round
// trip (context, build, buffers, launch, read-back) through the public
// API on a 4-GPU cluster — the per-run cost of the reproduction harness.
func BenchmarkHostProgramMatMul(b *testing.B) {
	lc, err := haocl.StartLocalCluster(haocl.LocalClusterSpec{
		UserID:      "bench",
		GPUNodes:    4,
		Bitstreams:  apps.Bitstreams(),
		Kernels:     bench.Registry(),
		ExecWorkers: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := matmul.Run(lc.Platform, matmul.Config{
			LogicalN: 2000,
			FuncN:    32,
			Devices:  lc.Platform.Devices(haocl.GPU),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations regenerates the design-choice ablation suite
// (DESIGN.md): chain broadcast vs star, weighted vs equal hetero
// partitioning, nnz-balanced vs naive SpMV splits, and the scheduler
// policy comparison.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Ablations(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
