package haocl_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"testing"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/apps"
	"github.com/haocl-project/haocl/internal/apps/matmul"
	"github.com/haocl-project/haocl/internal/device"
	"github.com/haocl-project/haocl/internal/kernel"
	"github.com/haocl-project/haocl/internal/node"
	"github.com/haocl-project/haocl/internal/protocol"
	"github.com/haocl-project/haocl/internal/sim"
	"github.com/haocl-project/haocl/internal/transport"
)

// startTCPNodes brings up real Node Management Processes listening on
// loopback TCP sockets — the deployment shape of cmd/haocl-node — and
// returns a cluster config pointing at them.
func startTCPNodes(t *testing.T, reg *haocl.KernelRegistry, specs []haocl.DeviceSpec) *haocl.ClusterConfig {
	t.Helper()
	icd := device.NewICD()
	sim.RegisterDrivers(icd, reg)
	cfg := &haocl.ClusterConfig{UserID: "tcp-test"}
	for i, spec := range specs {
		name := fmt.Sprintf("tcp-node-%d", i)
		var driver string
		switch spec.Type {
		case "cpu":
			driver = sim.DriverCPU
		case "fpga":
			driver = sim.DriverFPGA
		default:
			driver = sim.DriverGPU
		}
		n, err := node.New(node.Options{
			Name: name,
			Devices: []device.Config{{
				Driver:     driver,
				ID:         1,
				Shared:     spec.Shared,
				Bitstreams: spec.Bitstreams,
			}},
			ICD:         icd,
			ExecWorkers: 1,
			Dialer:      transport.TCPDialer{},
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := n.Serve()
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		cfg.Nodes = append(cfg.Nodes, haocl.NodeSpec{
			Name: name, Addr: addr, Devices: []haocl.DeviceSpec{spec},
		})
	}
	return cfg
}

func matmulRegistry() *haocl.KernelRegistry {
	reg := haocl.NewKernelRegistry()
	matmul.RegisterKernels(reg)
	return reg
}

// TestDistributedTCPMatMul runs the MatrixMul benchmark against real NMPs
// over TCP sockets: host program, wrapper library, backbone, node daemons
// and simulated devices, exactly as a multi-machine deployment would.
func TestDistributedTCPMatMul(t *testing.T) {
	cfg := startTCPNodes(t, matmulRegistry(), []haocl.DeviceSpec{
		{Type: "gpu", Shared: true},
		{Type: "gpu", Shared: true},
		{Type: "fpga", Shared: true, Bitstreams: apps.Bitstreams()},
	})
	p, err := haocl.Connect(cfg, haocl.WithClientName("tcp-integration"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if got := len(p.Devices(haocl.AnyDevice)); got != 3 {
		t.Fatalf("devices = %d, want 3", got)
	}
	res, err := matmul.Run(p, matmul.Config{
		LogicalN: 2000,
		FuncN:    36,
		Devices:  p.Devices(haocl.AnyDevice),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("TCP run not verified")
	}
	if res.Devices != 3 || res.Compute <= 0 {
		t.Fatalf("result = %+v", res)
	}
}

// TestMultiUserExclusiveDeviceOverTCP checks the NMP's shared-flag
// enforcement across two independent host connections.
func TestMultiUserExclusiveDeviceOverTCP(t *testing.T) {
	cfg := startTCPNodes(t, matmulRegistry(), []haocl.DeviceSpec{
		{Type: "gpu", Shared: false},
	})

	cfgAlice := *cfg
	cfgAlice.UserID = "alice"
	alice, err := haocl.Connect(&cfgAlice)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()

	cfgBob := *cfg
	cfgBob.UserID = "bob"
	bob, err := haocl.Connect(&cfgBob)
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()

	ctxA, err := alice.CreateContext(alice.Devices(haocl.GPU))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctxA.CreateQueue(alice.Devices(haocl.GPU)[0]); err != nil {
		t.Fatal(err)
	}

	ctxB, err := bob.CreateContext(bob.Devices(haocl.GPU))
	if err != nil {
		t.Fatal(err)
	}
	_, err = ctxB.CreateQueue(bob.Devices(haocl.GPU)[0])
	var re *protocol.RemoteError
	if !errors.As(err, &re) || re.Code != protocol.CodeDeviceBusy {
		t.Fatalf("bob's queue on alice's exclusive device: err = %v", err)
	}

	// Alice disconnecting frees the device for Bob.
	alice.Close()
	deadline := 200
	for ; deadline > 0; deadline-- {
		if _, err = ctxB.CreateQueue(bob.Devices(haocl.GPU)[0]); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("device never freed after alice disconnected: %v", err)
	}
}

// TestFPGABitstreamEnforcementEndToEnd builds a program containing a
// kernel the FPGA was not synthesized with: the build must fail with the
// node's build log naming the problem.
func TestFPGABitstreamEnforcementEndToEnd(t *testing.T) {
	reg := haocl.NewKernelRegistry()
	matmul.RegisterKernels(reg)
	reg.MustRegister(&haocl.KernelSpec{
		Name: "exotic", NumArgs: 1,
		Func: func(it *haocl.WorkItem, args []haocl.KernelArg) {},
	})
	cfg := startTCPNodes(t, reg, []haocl.DeviceSpec{
		{Type: "fpga", Shared: true, Bitstreams: []string{"matmul"}},
	})
	p, err := haocl.Connect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	ctx, err := p.CreateContext(p.Devices(haocl.FPGA))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ctx.CreateProgram(`__kernel void exotic(__global float* x) { }`)
	if err != nil {
		t.Fatal(err)
	}
	err = prog.Build()
	var re *protocol.RemoteError
	if !errors.As(err, &re) || re.Code != protocol.CodeBuildFailed {
		t.Fatalf("build on FPGA without bitstream: %v", err)
	}
}

// TestKernelRegistryExposedTypes sanity-checks the public alias surface.
func TestKernelRegistryExposedTypes(t *testing.T) {
	reg := haocl.NewKernelRegistry()
	spec := &haocl.KernelSpec{
		Name: "alias-check", NumArgs: 1,
		Func: func(it *haocl.WorkItem, args []haocl.KernelArg) {
			args[0].Float32s()[it.GlobalID(0)] = 1
		},
		Cost: func(g [3]int, _ []haocl.KernelArg) haocl.KernelCost {
			return haocl.KernelCost{Flops: int64(g[0])}
		},
	}
	if err := reg.Register(spec); err != nil {
		t.Fatal(err)
	}
	buf := haocl.BufferArg(make([]byte, 8))
	if err := kernel.Run(spec, kernel.Launch{Global: []int{2}, Args: []kernel.Arg{buf}}); err != nil {
		t.Fatal(err)
	}
	if buf.Float32s()[1] != 1 {
		t.Fatal("alias-typed kernel did not run")
	}
}

func TestConnectValidatesConfig(t *testing.T) {
	if _, err := haocl.Connect(nil); err == nil {
		t.Fatal("nil config accepted")
	}
	if _, err := haocl.Connect(&haocl.ClusterConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	_, err := haocl.Connect(&haocl.ClusterConfig{Nodes: []haocl.NodeSpec{
		{Name: "n", Addr: "127.0.0.1:1", Devices: []haocl.DeviceSpec{{Type: "warp-drive"}}},
	}})
	if err == nil {
		t.Fatal("bad device type accepted")
	}
}

func TestLocalClusterExplicitTopology(t *testing.T) {
	lc, err := haocl.StartLocalCluster(haocl.LocalClusterSpec{
		Kernels: matmulRegistry(),
		Config: &haocl.ClusterConfig{
			UserID: "topo",
			Nodes: []haocl.NodeSpec{
				{Name: "fat-node", Addr: "mem://fat", Devices: []haocl.DeviceSpec{
					{Type: "cpu", Shared: true},
					{Type: "gpu", Shared: true},
					{Type: "gpu", Shared: true},
				}},
			},
		},
		ExecWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if got := len(lc.Platform.Devices(haocl.GPU)); got != 2 {
		t.Fatalf("GPUs = %d, want 2", got)
	}
	if got := len(lc.Platform.Devices(haocl.CPU)); got != 1 {
		t.Fatalf("CPUs = %d, want 1", got)
	}
	// Multi-device single-node context works.
	res, err := matmul.Run(lc.Platform, matmul.Config{
		LogicalN: 1000, FuncN: 24,
		Devices: lc.Platform.Devices(haocl.AnyDevice),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("not verified")
	}
}

func TestLocalClusterRequiresKernels(t *testing.T) {
	if _, err := haocl.StartLocalCluster(haocl.LocalClusterSpec{GPUNodes: 1}); err == nil {
		t.Fatal("local cluster without kernels accepted")
	}
}

func TestLoadClusterConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/cluster.json"
	raw := `{"user":"u","nodes":[{"name":"a","addr":"1.2.3.4:7010","devices":[{"type":"gpu"}]}]}`
	if err := writeFile(path, raw); err != nil {
		t.Fatal(err)
	}
	cfg, err := haocl.LoadClusterConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.UserID != "u" || len(cfg.Nodes) != 1 || cfg.Nodes[0].Devices[0].Type != "gpu" {
		t.Fatalf("cfg = %+v", cfg)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

const reductionSource = `
// Work-group sum reduction with barriers and local memory.
__kernel void wg_reduce(__global const float* in,
                        __global float* partials,
                        __local float* scratch) {
    int lid = get_local_id(0);
    scratch[lid] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int stride = get_local_size(0) / 2; stride > 0; stride /= 2) {
        if (lid < stride) scratch[lid] += scratch[lid + stride];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lid == 0) partials[get_group_id(0)] = scratch[0];
}
`

// TestBarrierKernelThroughFullStack runs a work-group reduction — local
// memory, barriers, multi-group NDRange — through the public API, the
// backbone and an NMP, verifying OpenCL work-group semantics end to end.
func TestBarrierKernelThroughFullStack(t *testing.T) {
	reg := haocl.NewKernelRegistry()
	reg.MustRegister(&haocl.KernelSpec{
		Name:        "wg_reduce",
		NumArgs:     3,
		UsesBarrier: true,
		Func: func(it *haocl.WorkItem, args []haocl.KernelArg) {
			scratch := args[2].Float32s()
			lid := it.LocalID(0)
			scratch[lid] = args[0].Float32s()[it.GlobalID(0)]
			it.Barrier()
			for stride := it.LocalSize(0) / 2; stride > 0; stride /= 2 {
				if lid < stride {
					scratch[lid] += scratch[lid+stride]
				}
				it.Barrier()
			}
			if lid == 0 {
				args[1].Float32s()[it.GroupID(0)] = scratch[0]
			}
		},
	})
	lc, err := haocl.StartLocalCluster(haocl.LocalClusterSpec{
		UserID: "barrier-test", GPUNodes: 1, Kernels: reg, ExecWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	p := lc.Platform

	ctx, err := p.CreateContext(p.Devices(haocl.GPU))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ctx.CreateProgram(reductionSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}
	q, err := ctx.CreateQueue(p.Devices(haocl.GPU)[0])
	if err != nil {
		t.Fatal(err)
	}

	const groups, local = 8, 64
	in := make([]float32, groups*local)
	var want [groups]float32
	for i := range in {
		in[i] = float32(i % 10)
		want[i/local] += in[i]
	}
	bufIn, _ := ctx.CreateBuffer(4 * groups * local)
	bufOut, _ := ctx.CreateBuffer(4 * groups)
	if _, err := q.EnqueueWrite(bufIn, 0, memF32(in)); err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("wg_reduce")
	if err != nil {
		t.Fatal(err)
	}
	k.SetArg(0, bufIn)
	k.SetArg(1, bufOut)
	if err := k.SetArg(2, haocl.LocalSpace(4*local)); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueKernel(k, []int{groups * local}, []int{local}, nil, nil); err != nil {
		t.Fatal(err)
	}
	data, _, err := q.EnqueueRead(bufOut, 0, 4*groups)
	if err != nil {
		t.Fatal(err)
	}
	got := memBytesF32(data)
	for g := range want {
		if got[g] != want[g] {
			t.Fatalf("group %d sum = %v, want %v", g, got[g], want[g])
		}
	}
}

// TestNodeDeathMidRun kills one node's server, then checks that the runtime
// recovers: commands aimed at the dead node are re-placed on the survivor
// transparently, and the rest of the cluster keeps working.
func TestNodeDeathMidRun(t *testing.T) {
	reg := matmulRegistry()
	icd := device.NewICD()
	sim.RegisterDrivers(icd, reg)

	mkNode := func(name string) (*node.Node, string) {
		n, err := node.New(node.Options{
			Name:        name,
			Devices:     []device.Config{{Driver: sim.DriverGPU, ID: 1, Shared: true}},
			ICD:         icd,
			ExecWorkers: 1,
			Dialer:      transport.TCPDialer{},
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := n.Serve()
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		if name == "victim" {
			t.Cleanup(func() {})
			victimServer = srv
		}
		return n, addr
	}
	_, addr1 := mkNode("victim")
	_, addr2 := mkNode("survivor")

	cfg := &haocl.ClusterConfig{
		UserID: "failover",
		Nodes: []haocl.NodeSpec{
			{Name: "victim", Addr: addr1, Devices: []haocl.DeviceSpec{{Type: "gpu", Shared: true}}},
			{Name: "survivor", Addr: addr2, Devices: []haocl.DeviceSpec{{Type: "gpu", Shared: true}}},
		},
	}
	p, err := haocl.Connect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx, err := p.CreateContext(p.Devices(haocl.GPU))
	if err != nil {
		t.Fatal(err)
	}
	var victimDev, survivorDev *haocl.Device
	for _, d := range p.Devices(haocl.GPU) {
		if d.Key().Node == "victim" {
			victimDev = d
		} else {
			survivorDev = d
		}
	}
	qVictim, err := ctx.CreateQueue(victimDev)
	if err != nil {
		t.Fatal(err)
	}
	qSurvivor, err := ctx.CreateQueue(survivorDev)
	if err != nil {
		t.Fatal(err)
	}

	victimServer.Close() // the node dies

	// The victim's queue stays usable: recovery re-binds it to the
	// survivor and replays, so the write lands there instead of failing.
	buf, _ := ctx.CreateBuffer(16)
	payload := memF32([]float32{5, 6, 7, 8})
	if _, err := qVictim.EnqueueWrite(buf, 0, payload); err != nil {
		t.Fatalf("write after node death not re-placed: %v", err)
	}
	buf2, _ := ctx.CreateBuffer(16)
	if _, err := qSurvivor.EnqueueWrite(buf2, 0, make([]byte, 16)); err != nil {
		t.Fatalf("surviving node unusable: %v", err)
	}
	data, _, err := qSurvivor.EnqueueRead(buf, 0, 16)
	if err != nil {
		t.Fatalf("read of re-placed buffer: %v", err)
	}
	if got := memBytesF32(data); got[0] != 5 || got[3] != 8 {
		t.Fatalf("re-placed write lost data: %v", got)
	}
	if p.Metrics().Recoveries == 0 {
		t.Fatal("node death triggered no recovery")
	}
}

var victimServer interface{ Close() error }

func memF32(fs []float32) []byte {
	out := make([]byte, 4*len(fs))
	for i, f := range fs {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(f))
	}
	return out
}

func memBytesF32(bs []byte) []float32 {
	out := make([]float32, len(bs)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(bs[i*4:]))
	}
	return out
}
