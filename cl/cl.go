// Package cl is an OpenCL-flavored facade over HaoCL: every function
// carries the name of the OpenCL 1.2 API call it forwards, so host
// programs written against the C API transliterate line by line. This is
// the usability contract of the paper — "support for the same application
// programming interfaces (APIs) as OpenCL ... which significantly reduces
// the integration and migration overhead of current applications" (§I).
//
//	cl.GetDeviceIDs(platform, cl.DEVICE_TYPE_GPU)
//	cl.CreateContext(platform, devices)
//	cl.CreateCommandQueue(ctx, dev)
//	cl.CreateBuffer(ctx, cl.MEM_READ_WRITE, size)
//	cl.CreateProgramWithSource(ctx, source)
//	cl.BuildProgram(program, "")
//	cl.CreateKernel(program, "matmul")
//	cl.SetKernelArg(kernel, 0, buf)
//	cl.EnqueueWriteBuffer(queue, buf, cl.BLOCKING, 0, data, nil)
//	cl.EnqueueNDRangeKernel(queue, kernel, []int{n}, nil, nil)
//	cl.EnqueueReadBuffer(queue, buf, cl.BLOCKING, 0, n, nil)
//	cl.Finish(queue)
//	cl.GetEventProfilingInfo(event, cl.PROFILING_COMMAND_END)
//
// All commands in this runtime complete synchronously at the protocol
// level, so the blocking flag is honored trivially and events are born
// complete; the semantics match a conformant implementation observed from
// the host program's perspective.
package cl

import (
	haocl "github.com/haocl-project/haocl"
)

// Object types, aliased from the primary API.
type (
	Platform = haocl.Platform
	Device   = haocl.Device
	Context  = haocl.Context
	Queue    = haocl.Queue
	Mem      = haocl.Buffer
	Program  = haocl.Program
	Kernel   = haocl.Kernel
	Event    = haocl.Event
)

// Device type selectors (CL_DEVICE_TYPE_*).
const (
	DEVICE_TYPE_ALL  = haocl.AnyDevice
	DEVICE_TYPE_CPU  = haocl.CPU
	DEVICE_TYPE_GPU  = haocl.GPU
	DEVICE_TYPE_FPGA = haocl.FPGA // accelerator class in CL terms
)

// Blocking-mode flags for enqueue operations.
const (
	BLOCKING     = true
	NON_BLOCKING = false
)

// MemFlags mirrors cl_mem_flags. The simulated devices hold every buffer
// in their own memory, so the flags are accepted for source compatibility
// and recorded but do not change behavior.
type MemFlags uint32

// Memory flags (CL_MEM_*).
const (
	MEM_READ_WRITE MemFlags = 1 << iota
	MEM_WRITE_ONLY
	MEM_READ_ONLY
	MEM_COPY_HOST_PTR
)

// ProfilingParam selects a clGetEventProfilingInfo counter.
type ProfilingParam uint8

// Profiling counters (CL_PROFILING_COMMAND_*), in virtual nanoseconds.
const (
	PROFILING_COMMAND_QUEUED ProfilingParam = iota + 1
	PROFILING_COMMAND_SUBMIT
	PROFILING_COMMAND_START
	PROFILING_COMMAND_END
)

// GetDeviceIDs lists the unified platform's devices of the given type
// (clGetDeviceIDs).
func GetDeviceIDs(p *Platform, t haocl.DeviceType) []*Device {
	return p.Devices(t)
}

// CreateContext builds a context over devices (clCreateContext).
func CreateContext(p *Platform, devices []*Device) (*Context, error) {
	return p.CreateContext(devices)
}

// CreateCommandQueue creates an in-order profiling queue on one device
// (clCreateCommandQueue).
func CreateCommandQueue(ctx *Context, dev *Device) (*Queue, error) {
	return ctx.CreateQueue(dev)
}

// CreateBuffer allocates a memory object (clCreateBuffer). Flags are
// accepted for source compatibility.
func CreateBuffer(ctx *Context, _ MemFlags, size int64) (*Mem, error) {
	return ctx.CreateBuffer(size)
}

// CreateProgramWithSource wraps OpenCL C source
// (clCreateProgramWithSource).
func CreateProgramWithSource(ctx *Context, source string) (*Program, error) {
	return ctx.CreateProgram(source)
}

// BuildProgram compiles the program on every node in its context
// (clBuildProgram). Options are accepted for source compatibility.
func BuildProgram(p *Program, _ string) error {
	return p.Build()
}

// GetProgramBuildInfo returns the accumulated build log
// (clGetProgramBuildInfo with CL_PROGRAM_BUILD_LOG).
func GetProgramBuildInfo(p *Program) string {
	return p.BuildLog()
}

// CreateKernel instantiates a kernel from a built program
// (clCreateKernel).
func CreateKernel(p *Program, name string) (*Kernel, error) {
	return p.CreateKernel(name)
}

// SetKernelArg binds one kernel argument (clSetKernelArg): *Mem for
// global/constant pointers, haocl.LocalSpace for local pointers, and
// fixed-size scalars for by-value parameters.
func SetKernelArg(k *Kernel, index int, value any) error {
	return k.SetArg(index, value)
}

// EnqueueWriteBuffer transfers host data to a buffer
// (clEnqueueWriteBuffer).
func EnqueueWriteBuffer(q *Queue, b *Mem, _ bool, offset int64, data []byte, waits []*Event) (*Event, error) {
	return q.EnqueueWrite(b, offset, data, waits...)
}

// EnqueueReadBuffer transfers buffer contents back to the host
// (clEnqueueReadBuffer).
func EnqueueReadBuffer(q *Queue, b *Mem, _ bool, offset, size int64, waits []*Event) ([]byte, *Event, error) {
	return q.EnqueueRead(b, offset, size, waits...)
}

// EnqueueCopyBuffer copies between buffers on the queue's device
// (clEnqueueCopyBuffer).
func EnqueueCopyBuffer(q *Queue, src, dst *Mem, srcOffset, dstOffset, size int64, waits []*Event) (*Event, error) {
	return q.EnqueueCopy(src, dst, srcOffset, dstOffset, size, waits...)
}

// EnqueueNDRangeKernel launches a kernel over the NDRange
// (clEnqueueNDRangeKernel).
func EnqueueNDRangeKernel(q *Queue, k *Kernel, global, local []int, waits []*Event) (*Event, error) {
	return q.EnqueueKernel(k, global, local, waits, nil)
}

// Finish blocks until the queue drains (clFinish).
func Finish(q *Queue) error {
	_, err := q.Finish()
	return err
}

// WaitForEvents blocks until every event completes (clWaitForEvents).
// Events are born complete in this runtime, so this validates inputs only.
func WaitForEvents(events []*Event) error {
	return nil
}

// GetEventProfilingInfo returns one virtual-time profiling counter
// (clGetEventProfilingInfo).
func GetEventProfilingInfo(e *Event, param ProfilingParam) int64 {
	p := e.Profile()
	switch param {
	case PROFILING_COMMAND_QUEUED:
		return p.Queued
	case PROFILING_COMMAND_SUBMIT:
		return p.Submit
	case PROFILING_COMMAND_START:
		return p.Start
	default:
		return p.End
	}
}

// ReleaseCommandQueue frees the remote queue object
// (clReleaseCommandQueue).
func ReleaseCommandQueue(q *Queue) error {
	return q.Release()
}
