package cl_test

import (
	"testing"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/cl"
	"github.com/haocl-project/haocl/internal/mem"
)

const source = `
__kernel void axpb(__global float* x, const float a, const float b, const int n) {
    int i = get_global_id(0);
    if (i < n) x[i] = a * x[i] + b;
}
`

// TestOpenCLStyleHostProgram is a transliterated OpenCL C host program
// running through the cl facade on a two-node cluster.
func TestOpenCLStyleHostProgram(t *testing.T) {
	kernels := haocl.NewKernelRegistry()
	kernels.MustRegister(&haocl.KernelSpec{
		Name: "axpb", NumArgs: 4,
		Func: func(it *haocl.WorkItem, args []haocl.KernelArg) {
			i := it.GlobalID(0)
			if i >= args[3].Int() {
				return
			}
			x := args[0].Float32s()
			x[i] = args[1].Float32()*x[i] + args[2].Float32()
		},
	})
	lc, err := haocl.StartLocalCluster(haocl.LocalClusterSpec{
		UserID: "cl-test", GPUNodes: 2, Kernels: kernels, ExecWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	platform := lc.Platform

	devices := cl.GetDeviceIDs(platform, cl.DEVICE_TYPE_GPU)
	if len(devices) != 2 {
		t.Fatalf("devices = %d", len(devices))
	}
	if len(cl.GetDeviceIDs(platform, cl.DEVICE_TYPE_FPGA)) != 0 {
		t.Fatal("phantom FPGAs")
	}

	context, err := cl.CreateContext(platform, devices)
	if err != nil {
		t.Fatal(err)
	}
	program, err := cl.CreateProgramWithSource(context, source)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.BuildProgram(program, "-cl-fast-relaxed-math"); err != nil {
		t.Fatalf("%v\n%s", err, cl.GetProgramBuildInfo(program))
	}
	if cl.GetProgramBuildInfo(program) == "" {
		t.Fatal("empty build log")
	}

	queue, err := cl.CreateCommandQueue(context, devices[0])
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	buf, err := cl.CreateBuffer(context, cl.MEM_READ_WRITE, 4*n)
	if err != nil {
		t.Fatal(err)
	}

	in := make([]float32, n)
	for i := range in {
		in[i] = float32(i)
	}
	wev, err := cl.EnqueueWriteBuffer(queue, buf, cl.BLOCKING, 0, mem.F32Bytes(in), nil)
	if err != nil {
		t.Fatal(err)
	}

	kern, err := cl.CreateKernel(program, "axpb")
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range []any{buf, float32(3), float32(1), int32(n)} {
		if err := cl.SetKernelArg(kern, i, v); err != nil {
			t.Fatal(err)
		}
	}
	kev, err := cl.EnqueueNDRangeKernel(queue, kern, []int{n}, nil, []*cl.Event{wev})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.WaitForEvents([]*cl.Event{kev}); err != nil {
		t.Fatal(err)
	}

	out, _, err := cl.EnqueueReadBuffer(queue, buf, cl.BLOCKING, 0, 4*n, []*cl.Event{kev})
	if err != nil {
		t.Fatal(err)
	}
	got := mem.BytesF32(out)
	for i, v := range got {
		if want := 3*float32(i) + 1; v != want {
			t.Fatalf("x[%d] = %v, want %v", i, v, want)
		}
	}

	// Copy then verify through a second buffer.
	buf2, err := cl.CreateBuffer(context, cl.MEM_WRITE_ONLY, 4*n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.EnqueueCopyBuffer(queue, buf, buf2, 0, 0, 4*n, nil); err != nil {
		t.Fatal(err)
	}
	out2, _, err := cl.EnqueueReadBuffer(queue, buf2, cl.BLOCKING, 0, 4*n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mem.BytesF32(out2)[10] != got[10] {
		t.Fatal("copy mismatch")
	}

	if err := cl.Finish(queue); err != nil {
		t.Fatal(err)
	}

	// Profiling counters are ordered like the spec requires.
	q := cl.GetEventProfilingInfo(kev, cl.PROFILING_COMMAND_QUEUED)
	s := cl.GetEventProfilingInfo(kev, cl.PROFILING_COMMAND_SUBMIT)
	st := cl.GetEventProfilingInfo(kev, cl.PROFILING_COMMAND_START)
	en := cl.GetEventProfilingInfo(kev, cl.PROFILING_COMMAND_END)
	if !(q <= s && s <= st && st < en) {
		t.Fatalf("profiling order broken: %d %d %d %d", q, s, st, en)
	}

	if err := cl.ReleaseCommandQueue(queue); err != nil {
		t.Fatal(err)
	}
}
