#!/usr/bin/env python3
"""Unit tests for check_bench.py — run by CI's lint job."""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_bench


def report(experiment, comparisons, rows=None):
    return {"experiment": experiment, "comparisons": comparisons, "rows": rows or []}


def comparison(workload="w", virtual_match=True, **kw):
    c = {"workload": workload, "baseline": "b", "mode": "m", "speedup": 1.0,
         "virtual_match": virtual_match}
    c.update(kw)
    return c


class VirtualMatchExperiments(unittest.TestCase):
    def test_clean_report_passes(self):
        for exp in ("pipeline", "batch", "lanes"):
            rep = report(exp, [comparison()])
            self.assertEqual(check_bench.check_report("r", rep), [])

    def test_diverged_makespan_flagged(self):
        rep = report("pipeline", [comparison(virtual_match=False)])
        bad = check_bench.check_report("r", rep)
        self.assertEqual(len(bad), 1)
        self.assertIn("makespan diverged", bad[0][2])


class Coherence(unittest.TestCase):
    def test_clean(self):
        rep = report("coherence", [
            comparison("fully-stale"),
            comparison("partial-update", virtual_match=False, bytes_ratio=0.5),
        ])
        self.assertEqual(check_bench.check_report("r", rep), [])

    def test_stale_divergence_and_fat_delta_flagged(self):
        rep = report("coherence", [
            comparison("fully-stale", virtual_match=False),
            comparison("partial-update", bytes_ratio=1.0),
        ])
        problems = [b[2] for b in check_bench.check_report("r", rep)]
        self.assertIn("makespan diverged", problems)
        self.assertIn("delta moved no fewer bytes", problems)


class P2P(unittest.TestCase):
    def test_clean(self):
        rep = report("p2p", [comparison("partial-update", bytes_ratio=0.01)])
        self.assertEqual(check_bench.check_report("r", rep), [])

    def test_host_bytes_and_makespan_flagged(self):
        rep = report("p2p", [
            comparison("partial-update", virtual_match=False, bytes_ratio=0.5),
        ])
        problems = [b[2] for b in check_bench.check_report("r", rep)]
        self.assertIn("p2p makespan worse than host-relay", problems)
        self.assertIn("host NIC bytes not control-frames-only", problems)


class Chaos(unittest.TestCase):
    @staticmethod
    def rows(recoveries=5, replayed=40):
        return [
            {"workload": "delta", "mode": "no-failure"},
            {"workload": "delta", "mode": "chaos", "recoveries": recoveries,
             "replayed_commands": replayed},
        ]

    def test_clean(self):
        rep = report("chaos", [comparison("delta", speedup=0.8)], self.rows())
        self.assertEqual(check_bench.check_report("r", rep), [])

    def test_diverged_results_flagged(self):
        rep = report("chaos", [comparison("delta", virtual_match=False)], self.rows())
        problems = [b[2] for b in check_bench.check_report("r", rep)]
        self.assertIn("chaos results diverged from no-failure leg", problems)

    def test_unbounded_overhead_flagged(self):
        rep = report("chaos", [comparison("delta", speedup=0.1)], self.rows())
        problems = [b[2] for b in check_bench.check_report("r", rep)]
        self.assertTrue(any("recovery overhead unbounded" in p for p in problems))

    def test_no_recoveries_flagged(self):
        rep = report("chaos", [comparison("delta")], self.rows(recoveries=0))
        problems = [b[2] for b in check_bench.check_report("r", rep)]
        self.assertIn("chaos leg recorded no recoveries", problems)

    def test_recovery_without_replay_flagged(self):
        rep = report("chaos", [comparison("delta")], self.rows(replayed=0))
        problems = [b[2] for b in check_bench.check_report("r", rep)]
        self.assertIn("chaos leg recovered without replaying any commands", problems)

    def test_missing_chaos_rows_flagged(self):
        rep = report("chaos", [comparison("delta")], [{"workload": "delta", "mode": "no-failure"}])
        problems = [b[2] for b in check_bench.check_report("r", rep)]
        self.assertIn("no chaos rows in report", problems)


class Serve(unittest.TestCase):
    @staticmethod
    def comparisons(fair=2.0, fifo=50.0, rerun_match=True):
        return [
            comparison("light-0", baseline="solo", mode="fair", speedup=fair),
            comparison("light-0", baseline="solo", mode="fifo", speedup=fifo),
            comparison("Serve", baseline="fair", mode="fair-rerun",
                       virtual_match=rerun_match),
        ]

    def test_clean(self):
        rep = report("serve", self.comparisons())
        self.assertEqual(check_bench.check_report("r", rep), [])

    def test_unbounded_fair_p99_flagged(self):
        rep = report("serve", self.comparisons(fair=3.5))
        problems = [b[2] for b in check_bench.check_report("r", rep)]
        self.assertTrue(any("exceeds" in p for p in problems))

    def test_uncontended_fifo_flagged(self):
        rep = report("serve", self.comparisons(fifo=1.2))
        problems = [b[2] for b in check_bench.check_report("r", rep)]
        self.assertTrue(any("no contention" in p for p in problems))

    def test_nondeterministic_rerun_flagged(self):
        rep = report("serve", self.comparisons(rerun_match=False))
        problems = [b[2] for b in check_bench.check_report("r", rep)]
        self.assertIn("fair rerun latencies diverged", problems)

    def test_missing_comparisons_flagged(self):
        rep = report("serve", [comparison("light-0", baseline="solo", mode="fair")])
        problems = [b[2] for b in check_bench.check_report("r", rep)]
        self.assertIn("missing fair/fifo-vs-solo comparisons", problems)
        self.assertIn("missing fair-rerun determinism comparison", problems)


class ServeTrace(unittest.TestCase):
    def test_only_rerun_gated(self):
        # The trace-sized run is too small for the p99 bounds; a wild fair
        # ratio must pass as long as the rerun reproduced.
        rep = report("serve-trace", [
            comparison("light-0", baseline="solo", mode="fair", speedup=9.0),
            comparison("Serve", baseline="fair", mode="fair-rerun"),
        ])
        self.assertEqual(check_bench.check_report("r", rep), [])

    def test_nondeterministic_rerun_flagged(self):
        rep = report("serve-trace", [
            comparison("Serve", baseline="fair", mode="fair-rerun",
                       virtual_match=False),
        ])
        problems = [b[2] for b in check_bench.check_report("r", rep)]
        self.assertIn("fair rerun latencies diverged", problems)

    def test_missing_rerun_flagged(self):
        rep = report("serve-trace", [comparison("light-0", mode="fair")])
        problems = [b[2] for b in check_bench.check_report("r", rep)]
        self.assertIn("missing fair-rerun determinism comparison", problems)


class FieldTypes(unittest.TestCase):
    def test_unknown_fields_tolerated(self):
        rep = report("pipeline", [comparison(novel_metric="anything")],
                     [{"workload": "w", "future_column": {"nested": True}}])
        self.assertEqual(check_bench.check_report("r", rep), [])

    def test_int_accepted_for_float(self):
        rep = report("pipeline", [comparison(speedup=2)])
        self.assertEqual(check_bench.check_report("r", rep), [])

    def test_wrong_types_flagged(self):
        rep = report("pipeline", [comparison(virtual_match="yes")],
                     [{"workload": "w", "replayed_commands": 1.5,
                       "recoveries": True}])
        problems = [b[2] for b in check_bench.check_report("r", rep)]
        self.assertTrue(any("'virtual_match' is str, want bool" in p for p in problems))
        self.assertTrue(any("'replayed_commands' is float, want int" in p for p in problems))
        self.assertTrue(any("'recoveries' is bool, want int" in p for p in problems))


class Shapes(unittest.TestCase):
    def test_unknown_experiment_flagged(self):
        bad = check_bench.check_report("r", report("mystery", [comparison()]))
        self.assertTrue(any("unknown experiment" in b[2] for b in bad))

    def test_empty_comparisons_flagged(self):
        bad = check_bench.check_report("r", report("pipeline", []))
        self.assertTrue(any("no comparisons" in b[2] for b in bad))


class Main(unittest.TestCase):
    def test_unreadable_file_fails(self):
        self.assertEqual(check_bench.main(["/nonexistent/bench.json"]), 1)

    def test_end_to_end_pass_and_fail(self):
        with tempfile.TemporaryDirectory() as d:
            good = os.path.join(d, "good.json")
            with open(good, "w") as f:
                json.dump(report("pipeline", [comparison()]), f)
            self.assertEqual(check_bench.main([good]), 0)

            bad = os.path.join(d, "bad.json")
            with open(bad, "w") as f:
                json.dump(report("pipeline", [comparison(virtual_match=False)]), f)
            self.assertEqual(check_bench.main([good, bad]), 1)

    def test_committed_baselines_pass(self):
        # The BENCH_*.json files at the repository root are generated by
        # the same tool CI runs; the checker must accept them as-is.
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        paths = [os.path.join(root, n) for n in (
            "BENCH_pipeline.json", "BENCH_batch.json", "BENCH_lanes.json",
            "BENCH_coherence.json", "BENCH_p2p.json", "BENCH_chaos.json",
            "BENCH_serve.json")]
        for p in paths:
            self.assertTrue(os.path.exists(p), p)
        self.assertEqual(check_bench.main(paths), 0)


if __name__ == "__main__":
    unittest.main()
