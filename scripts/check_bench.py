#!/usr/bin/env python3
"""Gate the haocl-bench JSON reports on their model-level invariants.

CI's bench-smoke job regenerates every experiment with -quick -json and
pipes the files through this checker; it exits non-zero when a report
violates a design invariant. The rules are keyed off the report's
"experiment" field:

pipeline / batch / lanes
    Batching, pipelining and dispatch lanes must never change simulated
    time; every comparison must report virtual_match. For lanes this is
    the load-bearing assertion: a 1-lane and an N-lane node must produce
    bit-identical virtual makespans (DESIGN.md §4).

coherence
    Full and delta migration must be bit-identical when buffers are
    fully stale, and delta must move strictly fewer modeled bytes on the
    partial-update workload (DESIGN.md §5).

p2p
    The p2p data plane (DESIGN.md §6) must keep the host NIC to control
    frames only — at least a 10x host-byte reduction vs the host-relay
    baseline on the partial-update loop — and its virtual makespan must
    be no worse (virtual_match encodes "p2p <= host-relay" here).
    Contents are bit-verified inside the bench itself.

chaos
    The failure-injected leg must finish byte-identical to the healthy
    leg (virtual_match carries that bit; DESIGN.md §7), must actually
    absorb crashes (recoveries > 0 on every chaos row), and recovery
    overhead must stay bounded: the chaos leg's enqueue rate may not
    drop below 1/3 of the healthy leg's (speedup >= 1/3).

serve
    Fair-share admission must hold every light tenant's p99 virtual
    latency within 3x its solo baseline despite the 10x aggressor, FIFO
    must demonstrably fail that bound (>= 3x — otherwise the experiment
    exerted no contention), and the fair leg's rerun must reproduce every
    job latency exactly (virtual_match on the fair-rerun comparison;
    DESIGN.md §8). The speedup field of a serve comparison carries the
    p99 ratio versus solo.

serve-trace
    The trace-sized serve run: too few jobs for the p99 bounds to be
    statistically meaningful, so only the fair-rerun determinism bit is
    gated.

Every report also passes a schema check: known row and comparison fields
must carry their expected JSON types (ints are fine where floats are
expected), while unknown fields are tolerated so old checkers keep
working when the reports grow new columns.

Usage: check_bench.py [report.json ...]
With no arguments, checks the default bench-*.json set in the current
directory.
"""

import json
import sys

DEFAULT_REPORTS = [
    "bench-pipeline.json",
    "bench-batch.json",
    "bench-lanes.json",
    "bench-coherence.json",
    "bench-p2p.json",
    "bench-chaos.json",
    "bench-serve.json",
    "bench-serve-trace.json",
]

# The chaos leg may not run slower than this fraction of the healthy
# leg's enqueue rate; below it, recovery overhead is considered unbounded.
CHAOS_MIN_SPEEDUP = 1.0 / 3.0

# Serve: a light tenant's p99 under fair-share may be at most this
# multiple of its solo p99; under FIFO it must be at least it (the
# aggressor must actually distort the baseline for the bound to mean
# anything).
SERVE_P99_BOUND = 3.0

# Expected JSON types of the known report fields. float entries accept
# ints too (Go's encoder emits whole floats without a decimal point as
# far as json.load is concerned); fields not listed here are tolerated
# untyped, so reports may grow columns without breaking old checkers.
ROW_FIELD_TYPES = {
    "workload": str,
    "transport": str,
    "mode": str,
    "commands": int,
    "wall_ms": float,
    "cmds_per_sec": float,
    "virtual_sec": float,
    "wire_mb": float,
    "host_wire_mb": float,
    "peer_wire_mb": float,
    "recoveries": int,
    "replayed_commands": int,
    "tenant": str,
    "jobs": int,
    "p50_virtual_ms": float,
    "p99_virtual_ms": float,
    "jobs_per_virtual_sec": float,
}
COMPARISON_FIELD_TYPES = {
    "workload": str,
    "baseline": str,
    "mode": str,
    "speedup": float,
    "virtual_match": bool,
    "bytes_ratio": float,
}


def type_ok(val, want):
    """True when val satisfies the expected type (ints pass for floats;
    bools never pass for numbers, Python's bool-is-int notwithstanding)."""
    if want is bool:
        return isinstance(val, bool)
    if isinstance(val, bool):
        return False
    if want is float:
        return isinstance(val, (int, float))
    return isinstance(val, want)


def check_types(name, rep):
    """Return violations for known fields carrying the wrong JSON type."""
    bad = []
    for kind, objs, types in (
        ("row", rep.get("rows") or [], ROW_FIELD_TYPES),
        ("comparison", rep.get("comparisons") or [], COMPARISON_FIELD_TYPES),
    ):
        for obj in objs:
            for field, val in sorted(obj.items()):
                want = types.get(field)
                if want is not None and not type_ok(val, want):
                    bad.append((name, obj.get("workload", "-"),
                                "%s field %r is %s, want %s"
                                % (kind, field, type(val).__name__, want.__name__)))
    return bad


def check_report(name, rep):
    """Return a list of (name, workload, problem) violations for one report."""
    bad = []
    exp = rep.get("experiment")
    comparisons = rep.get("comparisons") or []
    rows = rep.get("rows") or []

    if exp in ("pipeline", "batch", "lanes"):
        for c in comparisons:
            if not c["virtual_match"]:
                bad.append((name, c["workload"], "makespan diverged"))
    elif exp == "coherence":
        for c in comparisons:
            if c["workload"] == "fully-stale" and not c["virtual_match"]:
                bad.append((name, c["workload"], "makespan diverged"))
            if c["workload"] == "partial-update" and c.get("bytes_ratio", 1) >= 1:
                bad.append((name, c["workload"], "delta moved no fewer bytes"))
    elif exp == "p2p":
        for c in comparisons:
            if not c["virtual_match"]:
                bad.append((name, c["workload"], "p2p makespan worse than host-relay"))
            if c["workload"] == "partial-update" and c.get("bytes_ratio", 1) > 0.1:
                bad.append((name, c["workload"], "host NIC bytes not control-frames-only"))
    elif exp == "chaos":
        for c in comparisons:
            if not c["virtual_match"]:
                bad.append((name, c["workload"], "chaos results diverged from no-failure leg"))
            if c.get("speedup", 0) < CHAOS_MIN_SPEEDUP:
                bad.append((name, c["workload"],
                            "recovery overhead unbounded (rate %.2fx healthy, floor %.2fx)"
                            % (c.get("speedup", 0), CHAOS_MIN_SPEEDUP)))
        for r in rows:
            if r.get("mode") == "chaos" and not r.get("recoveries", 0):
                bad.append((name, r["workload"], "chaos leg recorded no recoveries"))
            if (r.get("mode") == "chaos" and r.get("recoveries", 0)
                    and not r.get("replayed_commands", 0)):
                bad.append((name, r["workload"],
                            "chaos leg recovered without replaying any commands"))
        if not any(r.get("mode") == "chaos" for r in rows):
            bad.append((name, "-", "no chaos rows in report"))
    elif exp == "serve-trace":
        rerun = [c for c in comparisons if c.get("mode") == "fair-rerun"]
        for c in rerun:
            if not c.get("virtual_match"):
                bad.append((name, c["workload"], "fair rerun latencies diverged"))
        if not rerun:
            bad.append((name, "-", "missing fair-rerun determinism comparison"))
    elif exp == "serve":
        fair = [c for c in comparisons
                if c.get("mode") == "fair" and c.get("baseline") == "solo"]
        fifo = [c for c in comparisons
                if c.get("mode") == "fifo" and c.get("baseline") == "solo"]
        rerun = [c for c in comparisons if c.get("mode") == "fair-rerun"]
        for c in fair:
            if c.get("speedup", float("inf")) > SERVE_P99_BOUND:
                bad.append((name, c["workload"],
                            "fair-share p99 %.2fx solo exceeds %.1fx bound"
                            % (c.get("speedup", 0), SERVE_P99_BOUND)))
        for c in fifo:
            if c.get("speedup", 0) < SERVE_P99_BOUND:
                bad.append((name, c["workload"],
                            "fifo p99 only %.2fx solo — aggressor exerted no contention"
                            % c.get("speedup", 0)))
        for c in rerun:
            if not c.get("virtual_match"):
                bad.append((name, c["workload"], "fair rerun latencies diverged"))
        if not fair or not fifo:
            bad.append((name, "-", "missing fair/fifo-vs-solo comparisons"))
        if not rerun:
            bad.append((name, "-", "missing fair-rerun determinism comparison"))
    else:
        bad.append((name, "-", "unknown experiment %r" % (exp,)))

    if not comparisons:
        bad.append((name, "-", "no comparisons in report"))
    bad.extend(check_types(name, rep))
    return bad


def main(argv):
    paths = argv or DEFAULT_REPORTS
    bad = []
    for path in paths:
        try:
            with open(path) as f:
                rep = json.load(f)
        except (OSError, ValueError) as e:
            bad.append((path, "-", "unreadable: %s" % e))
            continue
        bad.extend(check_report(path, rep))
    if bad:
        print("bench invariants violated:")
        for name, workload, problem in bad:
            print("  %s: %s: %s" % (name, workload, problem))
        return 1
    print("bench invariants hold (%d reports)" % len(paths))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
