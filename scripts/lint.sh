#!/bin/sh
# lint.sh runs the same checks as the CI lint job, in the same order.
#
#   scripts/lint.sh
#
# staticcheck and govulncheck are skipped when not installed so the script
# works on a bare checkout; CI sets LINT_REQUIRE_TOOLS=1 after installing
# pinned versions, which turns a missing tool into a failure instead.
set -eu
cd "$(dirname "$0")/.."

echo '>> gofmt'
out="$(gofmt -l .)"
if [ -n "$out" ]; then
	echo "gofmt needed on:" >&2
	echo "$out" >&2
	exit 1
fi

echo '>> go vet'
go vet ./...
go vet ./examples/...

echo '>> haoclvet (lockguard, lockorder, vtimedet, errclass)'
go run ./cmd/haoclvet ./...

echo '>> bench checker self-tests'
python3 scripts/check_bench_test.py

run_tool() {
	tool="$1"
	shift
	if command -v "$tool" >/dev/null 2>&1; then
		echo ">> $tool"
		"$tool" "$@"
	elif [ "${LINT_REQUIRE_TOOLS:-}" = "1" ]; then
		echo "$tool is required in CI but not installed" >&2
		exit 1
	else
		echo ">> $tool (skipped: not installed)"
	fi
}

run_tool staticcheck ./...
run_tool govulncheck ./...

echo 'lint: all checks passed'
