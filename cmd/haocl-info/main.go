// Command haocl-info is the clinfo of a HaoCL cluster: it connects to
// every node in a cluster configuration and lists the devices the unified
// platform exposes, with their model parameters and live status.
//
// Usage:
//
//	haocl-info -config cluster.json
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	haocl "github.com/haocl-project/haocl"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "haocl-info:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("haocl-info", flag.ContinueOnError)
	configPath := fs.String("config", "cluster.json", "cluster configuration file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := haocl.LoadClusterConfig(*configPath)
	if err != nil {
		return err
	}
	p, err := haocl.Connect(cfg, haocl.WithClientName("haocl-info"))
	if err != nil {
		return err
	}
	defer p.Close()
	if err := p.PollStatus(); err != nil {
		return err
	}

	devices := p.Devices(haocl.AnyDevice)
	fmt.Printf("HaoCL platform: %d node(s), %d device(s)\n\n", len(cfg.Nodes), len(devices))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "DEVICE\tTYPE\tNAME\tCUs\tCLOCK\tMEM\tPEAK\tBW\tTDP\tSHARED")
	for _, d := range devices {
		info := d.Info()
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%dMHz\t%dGiB\t%.0fGF\t%.0fGB/s\t%.0fW\t%v\n",
			d.Key(), info.Type, info.Name, info.ComputeUnits, info.ClockMHz,
			info.GlobalMemBytes>>30, info.PeakGFLOPS, info.MemBWGBps,
			info.TDPWatts, info.Shared)
	}
	return tw.Flush()
}
