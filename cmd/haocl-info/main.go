// Command haocl-info is the clinfo of a HaoCL cluster: it connects to
// every node in a cluster configuration and lists the devices the unified
// platform exposes, with their model parameters and live status.
//
// Usage:
//
//	haocl-info -config cluster.json            # device inventory
//	haocl-info -config cluster.json -status    # live scheduler snapshot
//	haocl-info -config cluster.json -metrics   # Prometheus-text metrics
//
// -status renders the resource monitor's live view per device — the busy
// frontier the node last reported, the host-assigned work it has not yet
// acknowledged, and the estimated drain instant the scheduler's
// least-loaded placement uses. -metrics dumps the same state plus the
// runtime counters in Prometheus exposition format (DESIGN.md §10).
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	haocl "github.com/haocl-project/haocl"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "haocl-info:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("haocl-info", flag.ContinueOnError)
	configPath := fs.String("config", "cluster.json", "cluster configuration file")
	status := fs.Bool("status", false, "print the live per-device scheduler snapshot instead of the inventory")
	metrics := fs.Bool("metrics", false, "print a Prometheus-text metrics snapshot instead of the inventory")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := haocl.LoadClusterConfig(*configPath)
	if err != nil {
		return err
	}
	p, err := haocl.Connect(cfg, haocl.WithClientName("haocl-info"))
	if err != nil {
		return err
	}
	defer p.Close()
	if err := p.PollStatus(); err != nil {
		return err
	}

	switch {
	case *metrics:
		return p.WriteMetrics(os.Stdout)
	case *status:
		return printStatus(p)
	}

	devices := p.Devices(haocl.AnyDevice)
	fmt.Printf("HaoCL platform: %d node(s), %d device(s)\n\n", len(cfg.Nodes), len(devices))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "DEVICE\tTYPE\tNAME\tCUs\tCLOCK\tMEM\tPEAK\tBW\tTDP\tSHARED")
	for _, d := range devices {
		info := d.Info()
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%dMHz\t%dGiB\t%.0fGF\t%.0fGB/s\t%.0fW\t%v\n",
			d.Key(), info.Type, info.Name, info.ComputeUnits, info.ClockMHz,
			info.GlobalMemBytes>>30, info.PeakGFLOPS, info.MemBWGBps,
			info.TDPWatts, info.Shared)
	}
	return tw.Flush()
}

// printStatus renders the resource monitor's live view: what the scheduler
// sees when it ranks devices (least-loaded placement keys on EXPECTED-FREE,
// the busy frontier plus unacknowledged pending work).
func printStatus(p *haocl.Platform) error {
	views := p.Runtime().Monitor().Snapshot()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "DEVICE\tBUSY-UNTIL\tPENDING\tEXPECTED-FREE\tQUEUED\tKERNELS\tENERGY")
	for _, v := range views {
		fmt.Fprintf(tw, "%s\t%.3fs\t%.3fs\t%.3fs\t%d\t%d\t%.1fJ\n",
			v.Key.String(),
			float64(v.Status.BusyUntil)/1e9,
			v.Pending.Seconds(),
			v.ExpectedFree().Seconds(),
			v.Status.QueuedCmds,
			v.Status.KernelsRun,
			v.Status.EnergyJ)
	}
	return tw.Flush()
}
