// Command haocl-node runs one HaoCL Node Management Process: the daemon
// that owns a device node's accelerators and executes OpenCL API calls
// forwarded from the host (paper §III-D).
//
// Usage:
//
//	haocl-node -config cluster.json -name gpu-00
//	haocl-node -listen :7010 -devices gpu,cpu -name dev-node
//
// With -config, the node reads its name, address and device list from the
// shared cluster configuration file; with -listen/-devices it is
// self-describing. Every benchmark kernel from internal/apps is available
// as a pre-built device binary, mirroring the paper's FPGA deployment
// model.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/haocl-project/haocl/internal/apps"
	"github.com/haocl-project/haocl/internal/bench"
	"github.com/haocl-project/haocl/internal/cluster"
	"github.com/haocl-project/haocl/internal/device"
	"github.com/haocl-project/haocl/internal/node"
	"github.com/haocl-project/haocl/internal/sim"
	"github.com/haocl-project/haocl/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "haocl-node:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("haocl-node", flag.ContinueOnError)
	var (
		configPath = fs.String("config", "", "cluster configuration file (JSON)")
		name       = fs.String("name", "", "this node's name (required with -config)")
		listen     = fs.String("listen", "", "listen address when running without -config")
		devices    = fs.String("devices", "gpu", "comma-separated device types (cpu,gpu,fpga) without -config")
		workers    = fs.Int("workers", 0, "functional execution parallelism (0 = all cores)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var spec cluster.NodeSpec
	switch {
	case *configPath != "":
		if *name == "" {
			return fmt.Errorf("-name is required with -config")
		}
		cfg, err := cluster.Load(*configPath)
		if err != nil {
			return err
		}
		found := false
		for _, n := range cfg.Nodes {
			if n.Name == *name {
				spec = n
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("node %q not in %s", *name, *configPath)
		}
	case *listen != "":
		spec = cluster.NodeSpec{Name: *name, Addr: *listen}
		if spec.Name == "" {
			spec.Name = "node"
		}
		for _, t := range strings.Split(*devices, ",") {
			spec.Devices = append(spec.Devices, cluster.DeviceSpec{
				Type:       strings.TrimSpace(t),
				Shared:     true,
				Bitstreams: apps.Bitstreams(),
			})
		}
	default:
		return fmt.Errorf("either -config or -listen is required")
	}

	reg := bench.Registry()
	icd := device.NewICD()
	sim.RegisterDrivers(icd, reg)

	devCfgs, err := spec.DeviceConfigs()
	if err != nil {
		return err
	}
	n, err := node.New(node.Options{
		Name:        spec.Name,
		Devices:     devCfgs,
		ICD:         icd,
		ExecWorkers: *workers,
		Dialer:      transport.TCPDialer{},
	})
	if err != nil {
		return err
	}

	srv := n.Serve()
	addr, err := srv.Listen(spec.Addr)
	if err != nil {
		return err
	}
	log.Printf("node %q listening on %s with %d device(s), kernels: %v",
		spec.Name, addr, len(n.Devices()), reg.Names())

	done := make(chan struct{})
	n.OnShutdown(func() { close(done) })
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-done:
		log.Printf("node %q: shutdown requested by host", spec.Name)
	case s := <-sigs:
		log.Printf("node %q: %v", spec.Name, s)
	}
	return srv.Close()
}
