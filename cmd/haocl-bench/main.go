// Command haocl-bench regenerates the tables and figures of the paper's
// evaluation section (§IV) on simulated clusters.
//
// Usage:
//
//	haocl-bench                 # everything
//	haocl-bench -exp table1     # Table I benchmark inventory
//	haocl-bench -exp fig2       # end-to-end speedups, all five benchmarks
//	haocl-bench -exp hetero     # §IV-C heterogeneity evaluation
//	haocl-bench -exp fig3       # §IV-D MatrixMul breakdown analysis
//	haocl-bench -exp overhead   # §IV-B single-node overhead
//	haocl-bench -exp ablation   # design-choice ablations (DESIGN.md)
//	haocl-bench -exp pipeline   # async pipelining: sync vs pipelined enqueue
//	haocl-bench -exp batch      # wire-frame batching: sync vs pipelined vs batched
//	haocl-bench -exp lanes      # per-queue dispatch lanes: 1-lane vs per-queue node
//	haocl-bench -exp coherence  # range coherence: full-buffer vs delta migration
//	haocl-bench -exp p2p        # p2p data plane: host-relay vs direct node→node migration
//	haocl-bench -exp chaos      # fault tolerance: crash, re-placement and rejoin overhead
//	haocl-bench -exp serve      # multi-tenant serving: fair-share vs FIFO admission
//	haocl-bench -exp serve-trace  # trace-sized serve run (the committed BENCH_trace.json)
//	haocl-bench -exp fig2 -quick  # reduced sweeps
//	haocl-bench -exp pipeline -json  # machine-readable result (see below for the list)
//	haocl-bench -exp serve-trace -trace out.json  # export spans as Perfetto JSON
//
// All reported durations are virtual time from the calibrated device and
// network models; see DESIGN.md §1 for the methodology. The -json output
// of the pipeline, batch, lanes, coherence, p2p, chaos and serve
// experiments is the format committed as the BENCH_*.json perf baselines
// at the repository root and uploaded as a CI artifact by the bench-smoke
// job.
//
// -trace records every command's deterministic virtual-time span tree
// while the experiment runs and writes Chrome trace-event JSON on exit —
// load it in Perfetto (ui.perfetto.dev) or chrome://tracing. The same
// seeded experiment exports a byte-identical trace on every run; CI
// asserts this, and the committed BENCH_trace.json is the serve-trace
// export (DESIGN.md §10).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	haocl "github.com/haocl-project/haocl"
	"github.com/haocl-project/haocl/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "haocl-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("haocl-bench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment: table1, fig2, hetero, fig3, overhead, ablation, pipeline, batch, lanes, coherence, p2p, chaos, serve, serve-trace, all")
		quick    = fs.Bool("quick", false, "reduced sweeps for a fast look")
		jsonOut  = fs.Bool("json", false, "emit the result as JSON (pipeline, batch, lanes, coherence, p2p, chaos and serve)")
		traceOut = fs.String("trace", "", "write a Chrome trace-event JSON of the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *traceOut != "" {
		tracer := haocl.NewTracer()
		bench.SetTracer(tracer)
		defer func() {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "haocl-bench: trace:", err)
				return
			}
			defer f.Close()
			if err := tracer.WriteChrome(f); err != nil {
				fmt.Fprintln(os.Stderr, "haocl-bench: trace:", err)
			}
		}()
	}

	if *jsonOut {
		var (
			rep *bench.Report
			err error
		)
		switch *exp {
		case "pipeline":
			rep, err = bench.PipelineReport(*quick)
		case "batch":
			rep, err = bench.BatchReport(*quick)
		case "lanes":
			rep, err = bench.LanesReport(*quick)
		case "coherence":
			rep, err = bench.CoherenceReport(*quick)
		case "p2p":
			rep, err = bench.P2PReport(*quick)
		case "chaos":
			rep, err = bench.ChaosReport(*quick)
		case "serve":
			rep, err = bench.ServeReport(*quick, 1)
		case "serve-trace":
			rep, err = bench.ServeTraceReport(1)
		default:
			return fmt.Errorf("-json supports -exp pipeline, batch, lanes, coherence, p2p, chaos, serve and serve-trace, not %q", *exp)
		}
		if err != nil {
			return err
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}

	opts := bench.DefaultFig2Options()
	mixes := [][2]int{{2, 1}, {4, 2}, {8, 4}, {16, 4}}
	if *quick {
		opts = bench.Fig2Options{
			GPUCounts:    []int{1, 4, 16},
			FPGACounts:   []int{1, 4},
			HeteroMixes:  [][2]int{{4, 2}},
			SnuCLDCounts: []int{1, 16},
		}
		mixes = [][2]int{{2, 1}, {8, 4}}
	}

	w := os.Stdout
	runOne := func(name string) error {
		switch name {
		case "table1":
			return bench.Table1(w)
		case "fig2":
			return bench.Fig2(w, opts)
		case "hetero":
			return bench.Hetero(w, mixes)
		case "fig3":
			return bench.Fig3(w)
		case "overhead":
			return bench.Overhead(w)
		case "ablation":
			return bench.Ablations(w)
		case "pipeline":
			return bench.Pipeline(w, *quick)
		case "batch":
			return bench.Batch(w, *quick)
		case "lanes":
			return bench.Lanes(w, *quick)
		case "coherence":
			return bench.Coherence(w, *quick)
		case "p2p":
			return bench.P2P(w, *quick)
		case "chaos":
			return bench.Chaos(w, *quick)
		case "serve":
			return bench.Serve(w, *quick)
		case "serve-trace":
			return bench.ServeTrace(w)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	if *exp != "all" {
		return runOne(*exp)
	}
	for _, name := range []string{"table1", "overhead", "fig2", "hetero", "fig3", "ablation", "pipeline", "batch", "lanes", "coherence", "p2p", "chaos", "serve"} {
		if err := runOne(name); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
