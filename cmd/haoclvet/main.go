// Command haoclvet is the project's vet suite: a multichecker running the
// four analyzers that mechanize HaoCL's homegrown invariants — lock
// discipline (lockguard, lockorder), virtual-time determinism (vtimedet),
// and transport-error classification (errclass).
//
// Usage:
//
//	go run ./cmd/haoclvet ./...
//
// Findings print one per line as file:line:col: [analyzer] message, and a
// non-empty report exits 1. Suppress an individual finding with a trailing
// or preceding comment
//
//	//lint:ignore haoclvet/<analyzer> <reason>
//
// where the reason is mandatory; a reasonless directive is itself a
// finding. See DESIGN.md §9 for the annotation grammar the analyzers
// consume.
package main

import (
	"fmt"
	"os"

	"github.com/haocl-project/haocl/internal/analysis"
	"github.com/haocl-project/haocl/internal/analysis/errclass"
	"github.com/haocl-project/haocl/internal/analysis/lockguard"
	"github.com/haocl-project/haocl/internal/analysis/lockorder"
	"github.com/haocl-project/haocl/internal/analysis/vtimedet"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	analyzers := []*analysis.Analyzer{
		lockguard.Analyzer,
		lockorder.Analyzer,
		vtimedet.Analyzer,
		errclass.Analyzer,
	}
	diags, fset, err := analysis.Run(analyzers, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "haoclvet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Printf("%s: [%s] %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "haoclvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
